//! The Profile Index of §5.2.1: an inverted index from profiles to the ids
//! of the blocks that contain them.
//!
//! Implemented, as the paper prescribes, as a two-dimensional array whose
//! second dimension is sorted ascending, enabling
//!
//! * the **LeCoBI** (Least Common Block Index) condition — detecting
//!   repeated comparisons in `O(|B_i| + |B_j|)` by finding the least common
//!   block id, and
//! * **Edge Weighting** — counting/aggregating shared blocks by traversing
//!   the two sorted lists in parallel.
//!
//! Both operations are fused into a single merge pass ([`ProfileIndex::intersect`]).
//!
//! Two layouts share one set of merge kernels:
//!
//! * [`ProfileIndex`] — the frozen **CSR** batch index (`offsets` +
//!   one packed `block_ids` array): one allocation instead of `|P|`,
//!   sequential memory for the weighting sweeps.
//! * [`IncrementalProfileIndex`] — the growable per-profile-`Vec` index of
//!   the streaming ingest path (`sper-stream`), supporting amortized
//!   `O(|b|)` appends, and [`freeze`](IncrementalProfileIndex::freeze)-able
//!   into the CSR form.

use crate::block::{BlockCollection, BlockId};
use crate::weights::WeightingScheme;
use sper_model::ProfileId;

/// Result of intersecting two profiles' block lists in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectStats {
    /// `|B_i ∩ B_j|` — number of shared blocks (the CBS weight).
    pub common: u32,
    /// `Σ 1/‖b_k‖` over shared blocks (the ARCS weight).
    pub arcs: f64,
    /// The least common block id, when any block is shared.
    pub least_common: Option<BlockId>,
}

/// Single-pass merge of two sorted block-id lists against the cardinality
/// table — the kernel behind both index layouts.
fn merge_intersect(a: &[u32], b: &[u32], cardinalities: &[u64]) -> IntersectStats {
    let mut ai = 0;
    let mut bi = 0;
    let mut stats = IntersectStats {
        common: 0,
        arcs: 0.0,
        least_common: None,
    };
    while ai < a.len() && bi < b.len() {
        match a[ai].cmp(&b[bi]) {
            std::cmp::Ordering::Less => ai += 1,
            std::cmp::Ordering::Greater => bi += 1,
            std::cmp::Ordering::Equal => {
                let id = a[ai];
                if stats.least_common.is_none() {
                    stats.least_common = Some(BlockId(id));
                }
                stats.common += 1;
                stats.arcs += 1.0 / cardinalities[id as usize].max(1) as f64;
                ai += 1;
                bi += 1;
            }
        }
    }
    stats
}

/// The LeCoBI early-exit: is `current` the first shared id of the two
/// sorted lists? (True also when nothing is shared — see
/// [`ProfileIndex::is_new_comparison`].)
fn lecobi_is_new(a: &[u32], b: &[u32], current: u32) -> bool {
    let mut ai = 0;
    let mut bi = 0;
    while ai < a.len() && bi < b.len() {
        match a[ai].cmp(&b[bi]) {
            std::cmp::Ordering::Less => ai += 1,
            std::cmp::Ordering::Greater => bi += 1,
            std::cmp::Ordering::Equal => return a[ai] == current,
        }
    }
    true
}

/// Edge weight from two block lists (Algorithm 3 line 10).
fn weight_from_lists(
    a: &[u32],
    b: &[u32],
    cardinalities: &[u64],
    total_blocks: usize,
    scheme: WeightingScheme,
) -> f64 {
    let stats = merge_intersect(a, b, cardinalities);
    let acc = match scheme {
        WeightingScheme::Arcs => stats.arcs,
        _ => f64::from(stats.common),
    };
    scheme.finalize(acc, a.len(), b.len(), total_blocks)
}

/// Frozen CSR inverted index: profile id → ascending block ids in one
/// packed array, plus cached block cardinalities.
#[derive(Debug, Clone)]
pub struct ProfileIndex {
    /// `blocks_of(p) = block_ids[offsets[p]..offsets[p+1]]`.
    offsets: Vec<u32>,
    /// Packed block ids, each profile's range sorted ascending (block ids
    /// in the collection's current — typically cardinality-sorted — order).
    block_ids: Vec<u32>,
    /// `‖b‖` per block id.
    cardinalities: Vec<u64>,
    total_blocks: usize,
}

impl ProfileIndex {
    /// Builds the index over the blocks' **current order** — callers that
    /// need the LeCoBI semantics ("block id = processing position") must
    /// sort the collection with [`BlockCollection::sort_by_cardinality`]
    /// first, as Algorithm 3 does.
    ///
    /// Two counting passes over the packed member array — no per-profile
    /// allocation.
    pub fn build(blocks: &BlockCollection) -> Self {
        let n_profiles = blocks.n_profiles();
        let mut counts = vec![0u32; n_profiles];
        let mut cardinalities = Vec::with_capacity(blocks.len());
        for block in blocks.iter() {
            cardinalities.push(block.cardinality(blocks.kind()));
            for &p in block.profiles() {
                counts[p.index()] += 1;
            }
        }
        let offsets = crate::block::prefix_offsets(&counts);
        // Fill: blocks are visited in ascending id order, so each profile's
        // range fills ascending — sorted by construction.
        let mut cursor = offsets.clone();
        let mut block_ids = vec![0u32; *offsets.last().unwrap() as usize];
        for (bid, block) in blocks.iter().enumerate() {
            for &p in block.profiles() {
                let at = &mut cursor[p.index()];
                block_ids[*at as usize] = bid as u32;
                *at += 1;
            }
        }
        Self {
            offsets,
            block_ids,
            cardinalities,
            total_blocks: blocks.len(),
        }
    }

    /// `|B|`: number of blocks indexed.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of profiles indexed (including ones in no block).
    pub fn n_profiles(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `|B_i|`: the ids of the blocks containing `p`, ascending.
    #[inline]
    pub fn blocks_of(&self, p: ProfileId) -> &[u32] {
        &self.block_ids[self.offsets[p.index()] as usize..self.offsets[p.index() + 1] as usize]
    }

    /// `‖b‖` for a block id.
    #[inline]
    pub fn cardinality(&self, b: BlockId) -> u64 {
        self.cardinalities[b.index()]
    }

    /// Single-pass merge of the two sorted block lists, producing the shared
    /// count, the ARCS sum and the least common block id.
    pub fn intersect(&self, i: ProfileId, j: ProfileId) -> IntersectStats {
        merge_intersect(self.blocks_of(i), self.blocks_of(j), &self.cardinalities)
    }

    /// The **LeCoBI condition** (§5.2.1): a comparison between `i` and `j`
    /// encountered in block `current` is *new* iff `current` is the least
    /// common block of the two profiles. With blocks sorted by processing
    /// order, `X > current` is impossible for a genuine co-occurrence.
    ///
    /// This early-exits at the first shared id, without a full merge.
    /// When no block is shared, `current` cannot contain both — the
    /// comparison is treated as new so the caller's iteration stays total.
    #[inline]
    pub fn is_new_comparison(&self, i: ProfileId, j: ProfileId, current: BlockId) -> bool {
        lecobi_is_new(self.blocks_of(i), self.blocks_of(j), current.0)
    }

    /// Edge weight of the comparison `(i, j)` under `scheme`, derived purely
    /// from the Profile Index (Algorithm 3 line 10).
    pub fn weight(&self, i: ProfileId, j: ProfileId, scheme: WeightingScheme) -> f64 {
        weight_from_lists(
            self.blocks_of(i),
            self.blocks_of(j),
            &self.cardinalities,
            self.total_blocks,
            scheme,
        )
    }

    /// Borrowed views of the raw CSR arrays `(offsets, block_ids,
    /// cardinalities)` — the persistence boundary (`sper-store`)
    /// serializes exactly these plus [`total_blocks`](Self::total_blocks).
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[u64]) {
        (&self.offsets, &self.block_ids, &self.cardinalities)
    }

    /// Reassembles an index from raw CSR arrays — the inverse of
    /// [`raw_parts`](Self::raw_parts). Callers (the persistence layer)
    /// must validate untrusted input first; invariants are only
    /// debug-asserted here.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        block_ids: Vec<u32>,
        cardinalities: Vec<u64>,
        total_blocks: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(block_ids.len() as u32));
        debug_assert_eq!(cardinalities.len(), total_blocks);
        Self {
            offsets,
            block_ids,
            cardinalities,
            total_blocks,
        }
    }
}

/// Growable inverted index for streaming ingest: per-profile `Vec`s that
/// support amortized-`O(|b|)` block appends and member additions, with the
/// same query semantics as the frozen [`ProfileIndex`].
#[derive(Debug, Clone, Default)]
pub struct IncrementalProfileIndex {
    /// Second dimension sorted ascending.
    block_lists: Vec<Vec<u32>>,
    /// `‖b‖` per block id.
    cardinalities: Vec<u64>,
    total_blocks: usize,
    /// Tombstone set of the mutation model: `true` for profiles retired by
    /// [`Self::retire`]. Retired profiles keep their (now empty) slot so
    /// ids stay dense; they never re-enter a block list.
    retired: Vec<bool>,
}

impl IncrementalProfileIndex {
    /// An empty index over `n_profiles` profiles — the starting point of
    /// the streaming ingest path (`sper-stream`), grown with
    /// [`Self::push_block`] / [`Self::add_member`] / [`Self::add_profiles`]
    /// instead of full rebuilds.
    pub fn new_empty(n_profiles: usize) -> Self {
        Self {
            block_lists: vec![Vec::new(); n_profiles],
            cardinalities: Vec::new(),
            total_blocks: 0,
            retired: vec![false; n_profiles],
        }
    }

    /// Registers `additional` new profiles (appearing in no block yet).
    pub fn add_profiles(&mut self, additional: usize) {
        self.block_lists
            .extend(std::iter::repeat_with(Vec::new).take(additional));
        self.retired.extend(std::iter::repeat_n(false, additional));
    }

    /// Retires a profile: clears its block list and marks it tombstoned, so
    /// [`Self::blocks_of`] answers "in no block" from then on. The slot is
    /// kept (dense ids are load-bearing) and the id never re-enters a list.
    /// Block membership on the *block* side stays stale until the owner of
    /// the blocks compacts them — per-block cardinalities here are
    /// likewise stale until that compaction re-pushes the filtered blocks.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn retire(&mut self, p: ProfileId) {
        self.block_lists[p.index()] = Vec::new();
        self.retired[p.index()] = true;
    }

    /// True when [`Self::retire`] tombstoned this profile.
    #[inline]
    pub fn is_retired(&self, p: ProfileId) -> bool {
        self.retired[p.index()]
    }

    /// Number of tombstoned profiles.
    pub fn retired_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// Appends a new block with the given members and cardinality,
    /// returning its id. Per-profile block lists stay sorted because the
    /// new id is the largest so far — the amortized-O(|b|) append that
    /// replaces an O(‖B‖) rebuild.
    ///
    /// # Panics
    ///
    /// Panics when a member id is out of range.
    pub fn push_block(&mut self, members: &[ProfileId], cardinality: u64) -> BlockId {
        let id = self.total_blocks as u32;
        self.cardinalities.push(cardinality);
        self.total_blocks += 1;
        for &p in members {
            debug_assert!(!self.retired[p.index()], "retired profile joined a block");
            self.block_lists[p.index()].push(id);
        }
        BlockId(id)
    }

    /// Adds one member to an existing block, updating its cardinality.
    ///
    /// # Panics
    ///
    /// Panics when the block or profile id is out of range, or when the
    /// profile already lists a block id beyond `block` (appends must come
    /// in non-decreasing block-id order to keep the lists sorted).
    pub fn add_member(&mut self, block: BlockId, p: ProfileId, cardinality: u64) {
        debug_assert!(!self.retired[p.index()], "retired profile joined a block");
        let list = &mut self.block_lists[p.index()];
        match list.last() {
            Some(&last) if last == block.0 => {}
            Some(&last) => {
                assert!(
                    last < block.0,
                    "streaming appends must use non-decreasing block ids"
                );
                list.push(block.0);
            }
            None => list.push(block.0),
        }
        self.cardinalities[block.index()] = cardinality;
    }

    /// `|B|`: number of blocks indexed.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of profiles indexed (including ones in no block).
    pub fn n_profiles(&self) -> usize {
        self.block_lists.len()
    }

    /// `|B_i|`: the ids of the blocks containing `p`, ascending.
    #[inline]
    pub fn blocks_of(&self, p: ProfileId) -> &[u32] {
        &self.block_lists[p.index()]
    }

    /// `‖b‖` for a block id.
    #[inline]
    pub fn cardinality(&self, b: BlockId) -> u64 {
        self.cardinalities[b.index()]
    }

    /// See [`ProfileIndex::intersect`].
    pub fn intersect(&self, i: ProfileId, j: ProfileId) -> IntersectStats {
        merge_intersect(self.blocks_of(i), self.blocks_of(j), &self.cardinalities)
    }

    /// See [`ProfileIndex::is_new_comparison`].
    #[inline]
    pub fn is_new_comparison(&self, i: ProfileId, j: ProfileId, current: BlockId) -> bool {
        lecobi_is_new(self.blocks_of(i), self.blocks_of(j), current.0)
    }

    /// See [`ProfileIndex::weight`].
    pub fn weight(&self, i: ProfileId, j: ProfileId, scheme: WeightingScheme) -> f64 {
        weight_from_lists(
            self.blocks_of(i),
            self.blocks_of(j),
            &self.cardinalities,
            self.total_blocks,
            scheme,
        )
    }

    /// The per-profile block lists, in profile-id order — the persistence
    /// boundary (`sper-store`) serializes these (packed as CSR) plus the
    /// cardinality table.
    pub fn block_lists(&self) -> &[Vec<u32>] {
        &self.block_lists
    }

    /// Reassembles a growable index from its parts — the inverse of
    /// [`block_lists`](Self::block_lists) +
    /// [`cardinality`](Self::cardinality). Callers (the persistence layer)
    /// must validate untrusted input first; invariants are only
    /// debug-asserted here.
    pub fn from_parts(
        block_lists: Vec<Vec<u32>>,
        cardinalities: Vec<u64>,
        total_blocks: usize,
    ) -> Self {
        debug_assert_eq!(cardinalities.len(), total_blocks);
        debug_assert!(block_lists
            .iter()
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        debug_assert!(block_lists
            .iter()
            .all(|l| l.iter().all(|&b| (b as usize) < total_blocks)));
        let retired = vec![false; block_lists.len()];
        Self {
            block_lists,
            cardinalities,
            total_blocks,
            retired,
        }
    }

    /// Freezes the growable index into the packed CSR [`ProfileIndex`]
    /// (identical query results, sequential memory).
    pub fn freeze(&self) -> ProfileIndex {
        let mut offsets = Vec::with_capacity(self.block_lists.len() + 1);
        offsets.push(0u32);
        let total: usize = self.block_lists.iter().map(Vec::len).sum();
        let mut block_ids = Vec::with_capacity(total);
        for list in &self.block_lists {
            block_ids.extend_from_slice(list);
            offsets.push(crate::block::csr_offset(block_ids.len()));
        }
        ProfileIndex {
            offsets,
            block_ids,
            cardinalities: self.cardinalities.clone(),
            total_blocks: self.total_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockCollection};
    use crate::fixtures::fig3_profiles;
    use crate::token_blocking::TokenBlocking;
    use sper_model::ErKind;
    use sper_text::TokenInterner;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    /// The Fig. 3(b) blocks, sorted by cardinality as PBS would.
    fn fig3_index() -> (BlockCollection, ProfileIndex) {
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        (blocks, index)
    }

    #[test]
    fn arcs_weights_match_fig3c() {
        let (_, index) = fig3_index();
        // Paper ids are 1-based; ours 0-based.
        let w12 = index.weight(pid(0), pid(1), WeightingScheme::Arcs);
        assert!(
            (w12 - (1.0 + 1.0 / 3.0 + 1.0 / 6.0 + 1.0 / 15.0)).abs() < 1e-12,
            "c12 should be ≈1.57, got {w12}"
        );
        let w45 = index.weight(pid(3), pid(4), WeightingScheme::Arcs);
        assert!(
            (w45 - (1.0 + 1.0 + 1.0 / 15.0)).abs() < 1e-12,
            "c45 should be ≈2.07, got {w45}"
        );
        let w23 = index.weight(pid(1), pid(2), WeightingScheme::Arcs);
        assert!(
            (w23 - (1.0 / 3.0 + 1.0 / 6.0 + 1.0 / 15.0)).abs() < 1e-12,
            "c23 should be ≈0.57, got {w23}"
        );
        let w16 = index.weight(pid(0), pid(5), WeightingScheme::Arcs);
        assert!(
            (w16 - (1.0 / 6.0 + 1.0 / 15.0)).abs() < 1e-12,
            "c16 should be ≈0.23, got {w16}"
        );
        let w46 = index.weight(pid(3), pid(5), WeightingScheme::Arcs);
        assert!((w46 - 1.0 / 15.0).abs() < 1e-12, "c46 should be ≈0.07");
    }

    #[test]
    fn cbs_counts_shared_blocks() {
        let (_, index) = fig3_index();
        // p1 & p2 share carl, ny, tailor, white.
        assert_eq!(index.weight(pid(0), pid(1), WeightingScheme::Cbs), 4.0);
        // p4 & p6 share only white.
        assert_eq!(index.weight(pid(3), pid(5), WeightingScheme::Cbs), 1.0);
    }

    #[test]
    fn lecobi_detects_repeats() {
        let (blocks, index) = fig3_index();
        // Find the least common block of p4 (id 3) and p5 (id 4): the
        // smallest-id block containing both — after cardinality sorting this
        // is "ml" or "teacher", whichever sorted first.
        let stats = index.intersect(pid(3), pid(4));
        let least = stats.least_common.unwrap();
        assert!(index.is_new_comparison(pid(3), pid(4), least));
        // Any later shared block must flag the comparison as repeated.
        for bid in 0..blocks.len() as u32 {
            let b = BlockId(bid);
            if b != least
                && blocks.get(b).profiles().contains(&pid(3))
                && blocks.get(b).profiles().contains(&pid(4))
            {
                assert!(!index.is_new_comparison(pid(3), pid(4), b));
            }
        }
    }

    #[test]
    fn intersect_disjoint_profiles() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("a"), vec![pid(0), pid(1)]),
            Block::new_dirty(it.intern("b"), vec![pid(2), pid(3)]),
        ];
        let coll = BlockCollection::new(ErKind::Dirty, 4, it, blocks);
        let index = ProfileIndex::build(&coll);
        let stats = index.intersect(pid(0), pid(2));
        assert_eq!(stats.common, 0);
        assert_eq!(stats.arcs, 0.0);
        assert!(stats.least_common.is_none());
    }

    #[test]
    fn incremental_append_matches_batch_build() {
        // Grow an index block by block / member by member; it must agree
        // with the batch `build` on the same final collection — and so must
        // its frozen CSR form.
        let (blocks, batch) = fig3_index();
        let it = blocks.interner();
        let mut inc = IncrementalProfileIndex::new_empty(0);
        inc.add_profiles(blocks.n_profiles());
        let kind = sper_model::ErKind::Dirty;
        for block in blocks.iter() {
            // Simulate streaming: first member arrives with the block, the
            // rest join one at a time.
            let members = block.profiles();
            let id = inc.push_block(&members[..1], 0);
            let mut so_far = vec![members[0]];
            for &p in &members[1..] {
                so_far.push(p);
                let tmp = Block::new_dirty(it.intern("k"), so_far.clone());
                inc.add_member(id, p, tmp.cardinality(kind));
            }
        }
        assert_eq!(inc.total_blocks(), batch.total_blocks());
        let frozen = inc.freeze();
        assert_eq!(frozen.total_blocks(), batch.total_blocks());
        for p in 0..blocks.n_profiles() {
            assert_eq!(inc.blocks_of(pid(p as u32)), batch.blocks_of(pid(p as u32)));
            assert_eq!(
                frozen.blocks_of(pid(p as u32)),
                batch.blocks_of(pid(p as u32))
            );
        }
        for b in 0..blocks.len() as u32 {
            assert_eq!(inc.cardinality(BlockId(b)), batch.cardinality(BlockId(b)));
        }
        // Derived queries agree too.
        let a = inc.intersect(pid(0), pid(1));
        let b = batch.intersect(pid(0), pid(1));
        let f = frozen.intersect(pid(0), pid(1));
        assert_eq!(a, b);
        assert_eq!(f, b);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_append_panics() {
        let mut inc = IncrementalProfileIndex::new_empty(2);
        let b0 = inc.push_block(&[pid(0)], 0);
        inc.push_block(&[pid(0)], 0);
        inc.add_member(b0, pid(0), 1);
    }

    #[test]
    fn retire_clears_block_list_and_marks_tombstone() {
        let mut inc = IncrementalProfileIndex::new_empty(3);
        inc.push_block(&[pid(0), pid(1), pid(2)], 3);
        inc.push_block(&[pid(1), pid(2)], 1);
        assert_eq!(inc.blocks_of(pid(1)), &[0, 1]);
        inc.retire(pid(1));
        assert!(inc.is_retired(pid(1)));
        assert!(inc.blocks_of(pid(1)).is_empty());
        assert_eq!(inc.retired_count(), 1);
        // Untouched profiles keep their lists; ids stay addressable.
        assert_eq!(inc.blocks_of(pid(2)), &[0, 1]);
        assert_eq!(inc.n_profiles(), 3);
        // Intersection queries see the retired profile as sharing nothing.
        assert_eq!(inc.intersect(pid(0), pid(1)).common, 0);
    }

    #[test]
    fn block_lists_sorted_ascending() {
        let (_, index) = fig3_index();
        for p in 0..index.n_profiles() {
            let l = index.blocks_of(pid(p as u32));
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::block::{Block, BlockCollection};
    use proptest::prelude::*;
    use sper_model::ErKind;
    use sper_text::TokenInterner;
    use std::collections::BTreeSet;

    fn arbitrary_blocks() -> impl Strategy<Value = BlockCollection> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 2..6), 1..12).prop_map(
            |sets: Vec<BTreeSet<u32>>| {
                let it = TokenInterner::shared();
                let mut blocks: Vec<Block> = sets
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| {
                        Block::new_dirty(
                            it.intern(&format!("k{i}")),
                            s.into_iter().map(ProfileId).collect(),
                        )
                    })
                    .collect();
                // Mimic block scheduling so LeCoBI semantics hold.
                blocks.sort_by_key(|b| b.cardinality(ErKind::Dirty));
                BlockCollection::new(ErKind::Dirty, 12, it, blocks)
            },
        )
    }

    proptest! {
        /// `intersect` agrees with a naive set intersection, and LeCoBI
        /// agrees with "first shared block" semantics.
        #[test]
        fn intersect_matches_naive(blocks in arbitrary_blocks(), i in 0u32..12, j in 0u32..12) {
            prop_assume!(i != j);
            let index = ProfileIndex::build(&blocks);
            let a: BTreeSet<u32> = index.blocks_of(ProfileId(i)).iter().copied().collect();
            let b: BTreeSet<u32> = index.blocks_of(ProfileId(j)).iter().copied().collect();
            let shared: Vec<u32> = a.intersection(&b).copied().collect();
            let stats = index.intersect(ProfileId(i), ProfileId(j));
            prop_assert_eq!(stats.common as usize, shared.len());
            let expected_arcs: f64 = shared
                .iter()
                .map(|&bid| 1.0 / index.cardinality(BlockId(bid)).max(1) as f64)
                .sum();
            prop_assert!((stats.arcs - expected_arcs).abs() < 1e-9);
            prop_assert_eq!(stats.least_common, shared.first().map(|&x| BlockId(x)));
            // LeCoBI: only the first shared block is "new".
            for &bid in &shared {
                let is_new = index.is_new_comparison(ProfileId(i), ProfileId(j), BlockId(bid));
                prop_assert_eq!(is_new, Some(bid) == shared.first().copied());
            }
        }

        /// Weights are symmetric and non-negative under every scheme.
        #[test]
        fn weights_symmetric(blocks in arbitrary_blocks(), i in 0u32..12, j in 0u32..12) {
            prop_assume!(i != j);
            let index = ProfileIndex::build(&blocks);
            for scheme in WeightingScheme::ALL {
                let w1 = index.weight(ProfileId(i), ProfileId(j), scheme);
                let w2 = index.weight(ProfileId(j), ProfileId(i), scheme);
                prop_assert!((w1 - w2).abs() < 1e-12);
                prop_assert!(w1 >= 0.0);
            }
        }

        /// The frozen CSR index and the growable index agree on every
        /// query for every collection.
        #[test]
        fn freeze_preserves_queries(blocks in arbitrary_blocks(), i in 0u32..12, j in 0u32..12) {
            prop_assume!(i != j);
            let batch = ProfileIndex::build(&blocks);
            let mut inc = IncrementalProfileIndex::new_empty(blocks.n_profiles());
            for block in blocks.iter() {
                inc.push_block(block.profiles(), block.cardinality(ErKind::Dirty));
            }
            let frozen = inc.freeze();
            let (i, j) = (ProfileId(i), ProfileId(j));
            prop_assert_eq!(batch.blocks_of(i), frozen.blocks_of(i));
            prop_assert_eq!(batch.intersect(i, j), inc.intersect(i, j));
            prop_assert_eq!(batch.intersect(i, j), frozen.intersect(i, j));
            for scheme in WeightingScheme::ALL {
                prop_assert!((batch.weight(i, j, scheme) - frozen.weight(i, j, scheme)).abs() < 1e-12);
            }
        }
    }
}
