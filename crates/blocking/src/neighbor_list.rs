//! The schema-agnostic Neighbor List and Position Index (§3.2, §5.1).
//!
//! The Neighbor List is the sorted list of profiles produced by ordering all
//! schema-agnostic blocking keys (attribute-value tokens) alphabetically;
//! every profile typically occupies multiple positions, one per distinct
//! token (Fig. 3(d)–(e)).
//!
//! When several profiles share a key, their relative order inside the run is
//! *coincidental proximity* (§4.1) — "relatively random". We model this with
//! a seeded shuffle of every equal-key run, keeping experiments
//! deterministic while avoiding the systematic bias that insertion order
//! (generation order ≈ duplicate adjacency) would introduce.
//!
//! The Position Index is the inverted index from profile ids to Neighbor
//! List positions that powers the weighted similarity-based methods
//! (LS-PSN/GS-PSN, §5.1.1): `PI[i]` lists the positions of `p_i`, ascending.
//!
//! Construction is interned: placements are `(TokenId, ProfileId)` pairs,
//! and the global alphabetical sort compares one precomputed `u32`
//! lexicographic rank per token instead of strings — the dominant
//! `O(‖NL‖ log ‖NL‖)` sort runs on 8-byte records. The resulting list is
//! bit-identical to the historical string-sorted build (the rank order *is*
//! the string order, and the run shuffles consume the RNG identically).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sper_model::{ProfileCollection, ProfileId};
use sper_text::{TokenId, TokenInterner, Tokenizer};
use std::sync::Arc;

/// Inverted index: profile id → ascending Neighbor List positions.
#[derive(Debug, Clone)]
pub struct PositionIndex {
    positions: Vec<Vec<u32>>,
}

impl PositionIndex {
    fn build(nl: &[ProfileId], n_profiles: usize) -> Self {
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); n_profiles];
        for (pos, &p) in nl.iter().enumerate() {
            positions[p.index()].push(pos as u32);
        }
        Self { positions }
    }

    /// The positions of profile `p`, ascending. Empty when the profile has
    /// no tokens.
    #[inline]
    pub fn positions_of(&self, p: ProfileId) -> &[u32] {
        &self.positions[p.index()]
    }

    /// Number of placements of `p` (its distinct-token count).
    #[inline]
    pub fn num_positions(&self, p: ProfileId) -> usize {
        self.positions[p.index()].len()
    }

    /// Number of profiles indexed.
    pub fn n_profiles(&self) -> usize {
        self.positions.len()
    }
}

/// The schema-agnostic Neighbor List plus its Position Index.
#[derive(Debug, Clone)]
pub struct NeighborList {
    nl: Vec<ProfileId>,
    position_index: PositionIndex,
    interner: Arc<TokenInterner>,
    /// Interned blocking key per position; retained only when built with
    /// [`NeighborList::build_with_keys`].
    keys: Option<Vec<TokenId>>,
}

impl NeighborList {
    /// Builds the Neighbor List for `profiles` with the default tokenizer.
    /// Equal-key runs are shuffled with `seed` (coincidental proximity).
    pub fn build(profiles: &ProfileCollection, seed: u64) -> Self {
        Self::build_inner(profiles, seed, false)
    }

    /// Like [`Self::build`] but also retains the blocking key of every
    /// position, for inspection and tests.
    pub fn build_with_keys(profiles: &ProfileCollection, seed: u64) -> Self {
        Self::build_inner(profiles, seed, true)
    }

    fn build_inner(profiles: &ProfileCollection, seed: u64, keep_keys: bool) -> Self {
        let interner = TokenInterner::shared();
        let tokenizer = Tokenizer::default();
        // (token, profile) placements: one per *distinct* token per profile.
        let mut placements: Vec<(TokenId, ProfileId)> = Vec::new();
        let mut ids: Vec<TokenId> = Vec::new();
        for p in profiles.iter() {
            ids.clear();
            for attr in &p.attributes {
                tokenizer.tokenize_ids_into(&attr.value, &interner, &mut ids);
            }
            ids.sort_unstable();
            ids.dedup();
            for &t in &ids {
                placements.push((t, p.id));
            }
        }
        // Alphabetical order via the precomputed lexicographic rank: a
        // stable u32-keyed sort, so equal-key runs keep their profile-id
        // insertion order — exactly what the string sort produced.
        let rank = interner.rank();
        placements.sort_by_key(|&(t, _)| rank[t.index()]);

        // Shuffle every equal-key run: coincidental proximity.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut start = 0;
        while start < placements.len() {
            let mut end = start + 1;
            while end < placements.len() && placements[end].0 == placements[start].0 {
                end += 1;
            }
            if end - start > 1 {
                placements[start..end].shuffle(&mut rng);
            }
            start = end;
        }

        Self::from_parts(placements, interner, profiles.len(), keep_keys)
    }

    /// Builds a Neighbor List from placements that are already in final
    /// order (key strings non-decreasing, equal-key runs already permuted)
    /// — the streaming path (`sper-stream`), whose incremental index
    /// maintains that order itself. `keep_keys` retains the key of every
    /// position.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when key strings are not non-decreasing.
    pub fn from_sorted_placements(
        placements: Vec<(TokenId, ProfileId)>,
        interner: Arc<TokenInterner>,
        n_profiles: usize,
        keep_keys: bool,
    ) -> Self {
        debug_assert!(
            placements
                .windows(2)
                .all(|w| interner.cmp_str(w[0].0, w[1].0) != std::cmp::Ordering::Greater),
            "placements must be sorted by key string"
        );
        Self::from_parts(placements, interner, n_profiles, keep_keys)
    }

    fn from_parts(
        placements: Vec<(TokenId, ProfileId)>,
        interner: Arc<TokenInterner>,
        n_profiles: usize,
        keep_keys: bool,
    ) -> Self {
        let nl: Vec<ProfileId> = placements.iter().map(|&(_, p)| p).collect();
        let position_index = PositionIndex::build(&nl, n_profiles);
        let keys = keep_keys.then(|| placements.into_iter().map(|(k, _)| k).collect());
        Self {
            nl,
            position_index,
            interner,
            keys,
        }
    }

    /// Length of the list (total placements, `|p̄|·|P|` on average).
    pub fn len(&self) -> usize {
        self.nl.len()
    }

    /// True when no profile produced any token.
    pub fn is_empty(&self) -> bool {
        self.nl.is_empty()
    }

    /// The profile at `position`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn profile_at(&self, position: usize) -> ProfileId {
        self.nl[position]
    }

    /// The profile at a possibly-out-of-range position (window probes walk
    /// off both ends).
    #[inline]
    pub fn get(&self, position: isize) -> Option<ProfileId> {
        if position < 0 {
            return None;
        }
        self.nl.get(position as usize).copied()
    }

    /// The underlying list.
    pub fn as_slice(&self) -> &[ProfileId] {
        &self.nl
    }

    /// The Position Index.
    pub fn position_index(&self) -> &PositionIndex {
        &self.position_index
    }

    /// The interner resolving this list's keys.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// The interned blocking key at `position`, when keys were retained.
    pub fn key_id_at(&self, position: usize) -> Option<TokenId> {
        self.keys.as_ref().map(|k| k[position])
    }

    /// The blocking key string at `position`, when keys were retained.
    pub fn key_at(&self, position: usize) -> Option<Arc<str>> {
        self.keys
            .as_ref()
            .map(|k| self.interner.resolve(k[position]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn fig3_neighbor_list_shape() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build_with_keys(&profiles, 7);
        // Fig. 3(d): 11 distinct keys; Fig. 3(e): 24 placements.
        assert_eq!(nl.len(), 24);
        // Keys are sorted alphabetically.
        let keys: Vec<String> = (0..nl.len())
            .map(|i| nl.key_at(i).unwrap().to_string())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // The first run is "carl" = {p1, p2} in some order.
        let mut first_two = vec![nl.profile_at(0), nl.profile_at(1)];
        first_two.sort_unstable();
        assert_eq!(first_two, vec![pid(0), pid(1)]);
        // The last placement before "wi" is the 6-profile "white" run.
        assert_eq!(nl.key_at(23).as_deref(), Some("wi"));
        let mut white_run: Vec<ProfileId> = (17..23).map(|i| nl.profile_at(i)).collect();
        white_run.sort_unstable();
        assert_eq!(white_run, (0..6).map(pid).collect::<Vec<_>>());
    }

    #[test]
    fn position_index_inverts_neighbor_list() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 3);
        let pi = nl.position_index();
        for p in 0..6 {
            let p = pid(p);
            for &pos in pi.positions_of(p) {
                assert_eq!(nl.profile_at(pos as usize), p);
            }
            // Ascending.
            assert!(pi.positions_of(p).windows(2).all(|w| w[0] < w[1]));
        }
        // Every position is owned by exactly one profile.
        let total: usize = (0..6).map(|i| pi.num_positions(pid(i))).sum();
        assert_eq!(total, nl.len());
    }

    #[test]
    fn placements_equal_distinct_tokens() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 3);
        let pi = nl.position_index();
        // p1 (our p0): carl, white, ny, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(0)), 4);
        // p6 (our p5): emma, white, wi, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(5)), 4);
        // p2 (our p1): ny, carl, white, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(1)), 4);
    }

    #[test]
    fn different_seeds_permute_ties_only() {
        let profiles = fig3_profiles();
        let a = NeighborList::build_with_keys(&profiles, 1);
        let b = NeighborList::build_with_keys(&profiles, 2);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            // Same key sequence regardless of seed.
            assert_eq!(a.key_at(i), b.key_at(i));
        }
        // Same multiset of (key, profile) placements.
        let collect = |nl: &NeighborList| {
            let mut v: Vec<(String, ProfileId)> = (0..nl.len())
                .map(|i| (nl.key_at(i).unwrap().to_string(), nl.profile_at(i)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(collect(&a), collect(&b));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let profiles = fig3_profiles();
        let a = NeighborList::build(&profiles, 9);
        let b = NeighborList::build(&profiles, 9);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn out_of_range_probes() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 0);
        assert_eq!(nl.get(-1), None);
        assert_eq!(nl.get(nl.len() as isize), None);
        assert!(nl.get(0).is_some());
    }

    #[test]
    fn keys_not_retained_by_default() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 0);
        assert_eq!(nl.key_at(0), None);
        assert_eq!(nl.key_id_at(0), None);
    }
}
