//! The schema-agnostic Neighbor List and Position Index (§3.2, §5.1).
//!
//! The Neighbor List is the sorted list of profiles produced by ordering all
//! schema-agnostic blocking keys (attribute-value tokens) alphabetically;
//! every profile typically occupies multiple positions, one per distinct
//! token (Fig. 3(d)–(e)).
//!
//! When several profiles share a key, their relative order inside the run is
//! *coincidental proximity* (§4.1) — "relatively random". We model this with
//! a seeded shuffle of every equal-key run, keeping experiments
//! deterministic while avoiding the systematic bias that insertion order
//! (generation order ≈ duplicate adjacency) would introduce.
//!
//! The Position Index is the inverted index from profile ids to Neighbor
//! List positions that powers the weighted similarity-based methods
//! (LS-PSN/GS-PSN, §5.1.1): `PI[i]` lists the positions of `p_i`, ascending.
//!
//! Construction is interned: placements are `(TokenId, ProfileId)` pairs,
//! and the global alphabetical sort compares one precomputed `u32`
//! lexicographic rank per token instead of strings — the dominant
//! `O(‖NL‖ log ‖NL‖)` sort runs on 8-byte records. The resulting list is
//! bit-identical to the historical string-sorted build (the rank order *is*
//! the string order, and the run shuffles consume the RNG identically).

use crate::parallel::{Parallelism, ZeroThreads};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sper_model::{ProfileCollection, ProfileId};
use sper_text::{FxHashMap, TokenId, TokenInterner, Tokenizer};
use std::sync::Arc;

/// Shuffles every equal-key run of rank-sorted placements with a seeded
/// RNG — the *coincidental proximity* of §4.1, shared verbatim by the
/// sequential and parallel builds so both consume the RNG identically.
fn shuffle_equal_runs(placements: &mut [(TokenId, ProfileId)], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut start = 0;
    while start < placements.len() {
        let mut end = start + 1;
        while end < placements.len() && placements[end].0 == placements[start].0 {
            end += 1;
        }
        if end - start > 1 {
            placements[start..end].shuffle(&mut rng);
        }
        start = end;
    }
}

/// Deterministic k-way tournament merge of rank-sorted placement runs.
///
/// The tournament key is `(rank, run index)`: distinct token strings have
/// distinct ranks, and equal-rank ties resolve in run order — which is
/// global profile order, because runs hold contiguous profile ranges. The
/// output therefore equals a single stable sort of the concatenated runs.
fn merge_ranked_runs(
    runs: Vec<Vec<(TokenId, ProfileId)>>,
    rank: &[u32],
) -> Vec<(TokenId, ProfileId)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total = runs.iter().map(Vec::len).sum();
    let mut out: Vec<(TokenId, ProfileId)> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; runs.len()];
    // Min-heap over run fronts: the tournament of the k candidates.
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((rank[r[0].0.index()], i)))
        .collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let run = &runs[i];
        let at = cursors[i];
        out.push(run[at]);
        cursors[i] = at + 1;
        if at + 1 < run.len() {
            heap.push(Reverse((rank[run[at + 1].0.index()], i)));
        }
    }
    out
}

/// Inverted index: profile id → ascending Neighbor List positions.
#[derive(Debug, Clone)]
pub struct PositionIndex {
    positions: Vec<Vec<u32>>,
}

impl PositionIndex {
    fn build(nl: &[ProfileId], n_profiles: usize) -> Self {
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); n_profiles];
        for (pos, &p) in nl.iter().enumerate() {
            positions[p.index()].push(pos as u32);
        }
        Self { positions }
    }

    /// The positions of profile `p`, ascending. Empty when the profile has
    /// no tokens.
    #[inline]
    pub fn positions_of(&self, p: ProfileId) -> &[u32] {
        &self.positions[p.index()]
    }

    /// Number of placements of `p` (its distinct-token count).
    #[inline]
    pub fn num_positions(&self, p: ProfileId) -> usize {
        self.positions[p.index()].len()
    }

    /// Number of profiles indexed.
    pub fn n_profiles(&self) -> usize {
        self.positions.len()
    }
}

/// The schema-agnostic Neighbor List plus its Position Index.
#[derive(Debug, Clone)]
pub struct NeighborList {
    nl: Vec<ProfileId>,
    position_index: PositionIndex,
    interner: Arc<TokenInterner>,
    /// Interned blocking key per position; retained only when built with
    /// [`NeighborList::build_with_keys`].
    keys: Option<Vec<TokenId>>,
}

impl NeighborList {
    /// Builds the Neighbor List for `profiles` with the default tokenizer.
    /// Equal-key runs are shuffled with `seed` (coincidental proximity).
    pub fn build(profiles: &ProfileCollection, seed: u64) -> Self {
        Self::build_inner(profiles, seed, false)
    }

    /// Like [`Self::build`] but also retains the blocking key of every
    /// position, for inspection and tests.
    pub fn build_with_keys(profiles: &ProfileCollection, seed: u64) -> Self {
        Self::build_inner(profiles, seed, true)
    }

    /// Builds the Neighbor List on `threads` worker threads, **bit-identical**
    /// to the sequential [`Self::build`] with the same `seed`.
    ///
    /// The requested count passes through the spawn break-even guard
    /// ([`Parallelism::break_even`]): collections smaller than
    /// [`crate::MIN_PARALLEL_BATCH`] profiles and hosts whose available
    /// parallelism is exhausted fall back to the sequential path — the
    /// sharded tokenize/sort + tournament merge only pays for itself when
    /// there are both enough placements and enough real cores.
    ///
    /// The parallel build shards the profile range into contiguous chunks:
    /// each worker tokenizes its chunk through the shared interner and
    /// stable-sorts its placements by precomputed lexicographic rank; the
    /// sorted runs are then fused by a deterministic k-way tournament merge
    /// keyed on `(rank, chunk index)`. Because distinct strings have
    /// distinct ranks and the tie-break follows chunk order (= global
    /// profile order), the merged placement sequence equals the sequential
    /// stable sort exactly — so the equal-key run shuffle consumes the RNG
    /// identically and the final list matches position for position.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroThreads`] when `threads == 0`.
    pub fn par_build(
        profiles: &ProfileCollection,
        seed: u64,
        threads: usize,
    ) -> Result<Self, ZeroThreads> {
        let par = Parallelism::new(threads)?.break_even(profiles.len());
        Ok(if par.is_sequential() {
            Self::build_inner(profiles, seed, false)
        } else {
            Self::par_build_inner(profiles, seed, false, par)
        })
    }

    /// Like [`Self::par_build`] but also retains the blocking key of every
    /// position, for inspection and tests.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroThreads`] when `threads == 0`.
    pub fn par_build_with_keys(
        profiles: &ProfileCollection,
        seed: u64,
        threads: usize,
    ) -> Result<Self, ZeroThreads> {
        let par = Parallelism::new(threads)?.break_even(profiles.len());
        Ok(if par.is_sequential() {
            Self::build_inner(profiles, seed, true)
        } else {
            Self::par_build_inner(profiles, seed, true, par)
        })
    }

    fn build_inner(profiles: &ProfileCollection, seed: u64, keep_keys: bool) -> Self {
        let mut span = sper_obs::span!("blocking.nl_build", profiles = profiles.len());
        let interner = TokenInterner::shared();
        let tokenizer = Tokenizer::default();
        // (token, profile) placements: one per *distinct* token per profile.
        let mut placements: Vec<(TokenId, ProfileId)> = Vec::new();
        let mut ids: Vec<TokenId> = Vec::new();
        for p in profiles.iter() {
            ids.clear();
            for attr in &p.attributes {
                tokenizer.tokenize_ids_into(&attr.value, &interner, &mut ids);
            }
            ids.sort_unstable();
            ids.dedup();
            for &t in &ids {
                placements.push((t, p.id));
            }
        }
        // Alphabetical order via the precomputed lexicographic rank: a
        // stable u32-keyed sort, so equal-key runs keep their profile-id
        // insertion order — exactly what the string sort produced.
        let rank = interner.rank();
        placements.sort_by_key(|&(t, _)| rank[t.index()]);

        shuffle_equal_runs(&mut placements, seed);
        span.record("placements", placements.len());
        Self::from_parts(placements, interner, profiles.len(), keep_keys)
    }

    fn par_build_inner(
        profiles: &ProfileCollection,
        seed: u64,
        keep_keys: bool,
        par: Parallelism,
    ) -> Self {
        let mut span = sper_obs::span!(
            "blocking.nl_par_build",
            profiles = profiles.len(),
            threads = par.get(),
        );
        let interner = TokenInterner::shared();
        let n = profiles.len();
        if n == 0 {
            return Self::from_parts(Vec::new(), interner, 0, keep_keys);
        }
        let threads = par.capped(n).get();
        let chunk = n.div_ceil(threads);
        let all: &[sper_model::Profile] = profiles.profiles();

        // Map phase: each worker tokenizes a contiguous profile range into
        // its own placement run (run-local order = profile order).
        let mut runs: Vec<Vec<(TokenId, ProfileId)>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = all
                .chunks(chunk)
                .map(|profiles_chunk| {
                    let interner = Arc::clone(&interner);
                    scope.spawn(move |_| {
                        let tokenizer = Tokenizer::default();
                        let mut placements: Vec<(TokenId, ProfileId)> = Vec::new();
                        let mut ids: Vec<TokenId> = Vec::new();
                        // Worker-local token → id cache (see
                        // `parallel_token_blocking`): one interner-lock
                        // touch per distinct token per worker.
                        let mut cache: FxHashMap<Box<str>, TokenId> = FxHashMap::default();
                        for p in profiles_chunk {
                            ids.clear();
                            for attr in &p.attributes {
                                tokenizer.for_each_token(&attr.value, |tok| {
                                    let id = match cache.get(tok) {
                                        Some(&id) => id,
                                        None => {
                                            let id = interner.intern(tok);
                                            cache.insert(Box::from(tok), id);
                                            id
                                        }
                                    };
                                    ids.push(id);
                                });
                            }
                            ids.sort_unstable();
                            ids.dedup();
                            for &t in &ids {
                                placements.push((t, p.id));
                            }
                        }
                        placements
                    })
                })
                .collect();
            runs = handles.into_iter().map(|h| h.join().unwrap()).collect();
        })
        .expect("neighbor-list map phase panicked");

        // Sort phase: the rank table is computed once over the complete
        // vocabulary, then every run stable-sorts in parallel. Ranks are a
        // pure function of the token *strings* (not of the concurrent id
        // assignment order), so this order is reproducible run to run.
        let rank = interner.rank();
        crossbeam::thread::scope(|scope| {
            for run in runs.iter_mut() {
                let rank = &rank;
                scope.spawn(move |_| {
                    run.sort_by_key(|&(t, _)| rank[t.index()]);
                });
            }
        })
        .expect("neighbor-list sort phase panicked");

        // Merge + shuffle: deterministic tournament merge restores the
        // global stable order, then the run shuffle consumes the RNG
        // exactly as the sequential build does.
        let mut placements = merge_ranked_runs(runs, &rank);
        shuffle_equal_runs(&mut placements, seed);
        span.record("placements", placements.len());
        Self::from_parts(placements, interner, n, keep_keys)
    }

    /// Builds a Neighbor List from placements that are already in final
    /// order (key strings non-decreasing, equal-key runs already permuted)
    /// — the streaming path (`sper-stream`), whose incremental index
    /// maintains that order itself. `keep_keys` retains the key of every
    /// position.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when key strings are not non-decreasing.
    pub fn from_sorted_placements(
        placements: Vec<(TokenId, ProfileId)>,
        interner: Arc<TokenInterner>,
        n_profiles: usize,
        keep_keys: bool,
    ) -> Self {
        debug_assert!(
            placements
                .windows(2)
                .all(|w| interner.cmp_str(w[0].0, w[1].0) != std::cmp::Ordering::Greater),
            "placements must be sorted by key string"
        );
        Self::from_parts(placements, interner, n_profiles, keep_keys)
    }

    fn from_parts(
        placements: Vec<(TokenId, ProfileId)>,
        interner: Arc<TokenInterner>,
        n_profiles: usize,
        keep_keys: bool,
    ) -> Self {
        let nl: Vec<ProfileId> = placements.iter().map(|&(_, p)| p).collect();
        let position_index = PositionIndex::build(&nl, n_profiles);
        let keys = keep_keys.then(|| placements.into_iter().map(|(k, _)| k).collect());
        Self {
            nl,
            position_index,
            interner,
            keys,
        }
    }

    /// Length of the list (total placements, `|p̄|·|P|` on average).
    pub fn len(&self) -> usize {
        self.nl.len()
    }

    /// True when no profile produced any token.
    pub fn is_empty(&self) -> bool {
        self.nl.is_empty()
    }

    /// The profile at `position`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn profile_at(&self, position: usize) -> ProfileId {
        self.nl[position]
    }

    /// The profile at a possibly-out-of-range position (window probes walk
    /// off both ends).
    #[inline]
    pub fn get(&self, position: isize) -> Option<ProfileId> {
        if position < 0 {
            return None;
        }
        self.nl.get(position as usize).copied()
    }

    /// The underlying list.
    pub fn as_slice(&self) -> &[ProfileId] {
        &self.nl
    }

    /// The Position Index.
    pub fn position_index(&self) -> &PositionIndex {
        &self.position_index
    }

    /// The interner resolving this list's keys.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// The retained per-position keys (see [`Self::build_with_keys`]),
    /// when any.
    pub fn keys(&self) -> Option<&[TokenId]> {
        self.keys.as_deref()
    }

    /// Reassembles a list from its raw arrays — the inverse of
    /// [`as_slice`](Self::as_slice) + [`keys`](Self::keys), used by the
    /// persistence layer (`sper-store`). The Position Index is rebuilt
    /// deterministically from the list, so a round-trip is bit-identical.
    /// Callers must validate untrusted input first (every profile id `<
    /// n_profiles`, `keys` — when kept — as long as `nl`); invariants are
    /// only debug-asserted here.
    pub fn from_raw_parts(
        nl: Vec<ProfileId>,
        keys: Option<Vec<TokenId>>,
        interner: Arc<TokenInterner>,
        n_profiles: usize,
    ) -> Self {
        debug_assert!(nl.iter().all(|p| p.index() < n_profiles));
        debug_assert!(keys.as_ref().is_none_or(|k| k.len() == nl.len()));
        let position_index = PositionIndex::build(&nl, n_profiles);
        Self {
            nl,
            position_index,
            interner,
            keys,
        }
    }

    /// The interned blocking key at `position`, when keys were retained.
    pub fn key_id_at(&self, position: usize) -> Option<TokenId> {
        self.keys.as_ref().map(|k| k[position])
    }

    /// The blocking key string at `position`, when keys were retained.
    pub fn key_at(&self, position: usize) -> Option<Arc<str>> {
        self.keys
            .as_ref()
            .map(|k| self.interner.resolve(k[position]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn fig3_neighbor_list_shape() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build_with_keys(&profiles, 7);
        // Fig. 3(d): 11 distinct keys; Fig. 3(e): 24 placements.
        assert_eq!(nl.len(), 24);
        // Keys are sorted alphabetically.
        let keys: Vec<String> = (0..nl.len())
            .map(|i| nl.key_at(i).unwrap().to_string())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // The first run is "carl" = {p1, p2} in some order.
        let mut first_two = vec![nl.profile_at(0), nl.profile_at(1)];
        first_two.sort_unstable();
        assert_eq!(first_two, vec![pid(0), pid(1)]);
        // The last placement before "wi" is the 6-profile "white" run.
        assert_eq!(nl.key_at(23).as_deref(), Some("wi"));
        let mut white_run: Vec<ProfileId> = (17..23).map(|i| nl.profile_at(i)).collect();
        white_run.sort_unstable();
        assert_eq!(white_run, (0..6).map(pid).collect::<Vec<_>>());
    }

    #[test]
    fn position_index_inverts_neighbor_list() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 3);
        let pi = nl.position_index();
        for p in 0..6 {
            let p = pid(p);
            for &pos in pi.positions_of(p) {
                assert_eq!(nl.profile_at(pos as usize), p);
            }
            // Ascending.
            assert!(pi.positions_of(p).windows(2).all(|w| w[0] < w[1]));
        }
        // Every position is owned by exactly one profile.
        let total: usize = (0..6).map(|i| pi.num_positions(pid(i))).sum();
        assert_eq!(total, nl.len());
    }

    #[test]
    fn placements_equal_distinct_tokens() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 3);
        let pi = nl.position_index();
        // p1 (our p0): carl, white, ny, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(0)), 4);
        // p6 (our p5): emma, white, wi, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(5)), 4);
        // p2 (our p1): ny, carl, white, tailor → 4 placements.
        assert_eq!(pi.num_positions(pid(1)), 4);
    }

    #[test]
    fn different_seeds_permute_ties_only() {
        let profiles = fig3_profiles();
        let a = NeighborList::build_with_keys(&profiles, 1);
        let b = NeighborList::build_with_keys(&profiles, 2);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            // Same key sequence regardless of seed.
            assert_eq!(a.key_at(i), b.key_at(i));
        }
        // Same multiset of (key, profile) placements.
        let collect = |nl: &NeighborList| {
            let mut v: Vec<(String, ProfileId)> = (0..nl.len())
                .map(|i| (nl.key_at(i).unwrap().to_string(), nl.profile_at(i)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(collect(&a), collect(&b));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let profiles = fig3_profiles();
        let a = NeighborList::build(&profiles, 9);
        let b = NeighborList::build(&profiles, 9);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn out_of_range_probes() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 0);
        assert_eq!(nl.get(-1), None);
        assert_eq!(nl.get(nl.len() as isize), None);
        assert!(nl.get(0).is_some());
    }

    #[test]
    fn keys_not_retained_by_default() {
        let profiles = fig3_profiles();
        let nl = NeighborList::build(&profiles, 0);
        assert_eq!(nl.key_at(0), None);
        assert_eq!(nl.key_id_at(0), None);
    }

    #[test]
    fn par_build_is_bit_identical_to_sequential() {
        // Larger than fig3 so chunks are non-trivial and equal-key runs
        // span chunk boundaries.
        let mut b = sper_model::ProfileCollectionBuilder::dirty();
        for i in 0..97u32 {
            let base = i % 31;
            b.add_profile([("t", format!("tok{} shared{} common", base, base % 5))]);
        }
        let profiles = b.build();
        for seed in [0u64, 7, 42] {
            let sequential = NeighborList::build_with_keys(&profiles, seed);
            for threads in [2usize, 3, 5, 8] {
                // Drive the sharded build directly: the public entry's
                // break-even guard would route a 97-profile collection (or
                // any run on a 1-core host) to the sequential path and
                // leave the tournament merge untested.
                let par = Parallelism::new(threads).unwrap();
                let parallel = NeighborList::par_build_inner(&profiles, seed, true, par);
                assert_eq!(
                    parallel.as_slice(),
                    sequential.as_slice(),
                    "seed {seed}, threads {threads}"
                );
                for i in 0..sequential.len() {
                    assert_eq!(parallel.key_at(i), sequential.key_at(i));
                }
                // The guarded public entry agrees (whatever path it takes).
                let guarded = NeighborList::par_build_with_keys(&profiles, seed, threads)
                    .expect("threads > 0");
                assert_eq!(guarded.as_slice(), sequential.as_slice());
            }
        }
    }

    #[test]
    fn par_build_break_even_guard_falls_back_to_sequential() {
        // Small inputs collapse to one worker before any spawn happens;
        // the guard also caps at the host's available parallelism, so the
        // request below never oversubscribes regardless of machine.
        let par = Parallelism::new(8).unwrap();
        assert!(par.break_even(10).is_sequential());
        assert!(par
            .break_even(crate::MIN_PARALLEL_BATCH - 1)
            .is_sequential());
        let big = par.break_even(crate::MIN_PARALLEL_BATCH);
        assert!(big.get() <= Parallelism::available().get());
    }

    #[test]
    fn par_build_edge_cases() {
        // Empty collection.
        let empty = sper_model::ProfileCollectionBuilder::dirty().build();
        let nl = NeighborList::par_build(&empty, 1, 4).unwrap();
        assert!(nl.is_empty());
        // Single profile.
        let mut b = sper_model::ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "lonely profile tokens")]);
        let one = b.build();
        let seq = NeighborList::build(&one, 3);
        let par = NeighborList::par_build(&one, 3, 8).unwrap();
        assert_eq!(par.as_slice(), seq.as_slice());
        // Zero threads: typed error, no panic.
        assert!(NeighborList::par_build(&one, 3, 0).is_err());
    }
}
