//! Method-level equivalence: the seven progressive methods, running on the
//! interned/CSR representation stack, emit exactly what the string-keyed
//! seed semantics entail — dirty and clean-clean.
//!
//! What is pinned down per method family:
//!
//! * **Equality-based (PBS, PPS)** — exhaustive cumulative emission *sets*
//!   equal the distinct valid comparisons of the string-keyed reference
//!   blocks (`sper_blocking::legacy`), with no pair emitted twice; PBS
//!   weights equal the naive string-keyed weight of the emitted pair.
//! * **Similarity-based (SA-PSN, LS-PSN, GS-PSN)** — the full emission
//!   *sequence* is identical when the method runs over the interned
//!   Neighbor List versus a list reconstructed from the string-keyed seed
//!   build (the lists themselves are bit-identical; this closes the loop
//!   at the method layer).
//! * **Hierarchy-based (SA-PSAB)** — block-level emission: the multiset of
//!   emitted pairs matches the suffix blocks' comparisons.
//! * **PSN** — schema-based baseline, unaffected by interning; smoke-tested
//!   for determinism.

use proptest::prelude::*;
use sper_blocking::legacy::{string_block_lists, string_neighbor_list, string_token_blocking};
use sper_blocking::{NeighborList, TokenInterner, WeightingScheme};
use sper_core::gs_psn::GsPsn;
use sper_core::ls_psn::LsPsn;
use sper_core::pbs::Pbs;
use sper_core::pps::Pps;
use sper_core::psn::Psn;
use sper_core::sa_psn::SaPsn;
use sper_core::{build_method, Comparison, MethodConfig, Parallelism, ProgressiveMethod};
use sper_model::{ErKind, Pair, ProfileCollection, ProfileCollectionBuilder};
use std::collections::HashSet;
use std::sync::Arc;

fn dirty_collection() -> impl Strategy<Value = ProfileCollection> {
    proptest::collection::vec("[a-e ]{1,10}", 2..18).prop_map(|values| {
        let mut b = ProfileCollectionBuilder::dirty();
        for v in values {
            b.add_profile([("t", v)]);
        }
        b.build()
    })
}

/// Half Dirty (both vecs in one source), half Clean-clean (P1 | P2).
fn any_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        proptest::collection::vec("[a-e ]{1,10}", 1..9),
        proptest::collection::vec("[a-e ]{1,10}", 1..9),
        0u8..2,
    )
        .prop_map(|(p1, p2, kind)| {
            let mut b = if kind == 0 {
                ProfileCollectionBuilder::dirty()
            } else {
                ProfileCollectionBuilder::clean_clean()
            };
            for v in p1 {
                b.add_profile([("t", v)]);
            }
            if kind != 0 {
                b.start_second_source();
            }
            for v in p2 {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
}

/// The distinct valid comparisons entailed by the string-keyed reference
/// blocks — the eventual emission set of any exhaustive equality-based
/// method under seed semantics.
fn reference_pair_set(coll: &ProfileCollection) -> HashSet<Pair> {
    let blocks = string_token_blocking(coll);
    let mut pairs = HashSet::new();
    for b in &blocks {
        match coll.kind() {
            ErKind::Dirty => {
                for (i, &x) in b.members.iter().enumerate() {
                    for &y in &b.members[i + 1..] {
                        pairs.insert(Pair::new(x, y));
                    }
                }
            }
            ErKind::CleanClean => {
                let (firsts, seconds) = b.members.split_at(b.n_first as usize);
                for &x in firsts {
                    for &y in seconds {
                        pairs.insert(Pair::new(x, y));
                    }
                }
            }
        }
    }
    pairs
}

/// Rebuilds a [`NeighborList`] from the string-keyed seed build by
/// interning its placements — the "seed semantics" list the similarity
/// methods are compared against.
fn neighbor_list_from_seed_build(coll: &ProfileCollection, seed: u64) -> NeighborList {
    let (nl, keys) = string_neighbor_list(coll, seed);
    let interner = TokenInterner::shared();
    let placements: Vec<_> = keys
        .iter()
        .zip(&nl)
        .map(|(k, &p)| (interner.intern(k), p))
        .collect();
    NeighborList::from_sorted_placements(placements, Arc::clone(&interner), coll.len(), false)
}

fn pairs_of(emissions: &[Comparison]) -> Vec<Pair> {
    emissions.iter().map(|c| c.pair).collect()
}

proptest! {
    /// PBS (exhaustive, unpruned blocks): cumulative emission set equals
    /// the seed-semantics distinct-pair set, each pair exactly once, with
    /// the naive string-keyed weight.
    #[test]
    fn pbs_emissions_match_seed_semantics(coll in any_collection(), scheme_idx in 0usize..4) {
        let scheme = WeightingScheme::ALL[scheme_idx];
        let reference = reference_pair_set(&coll);
        let legacy_blocks = string_token_blocking(&coll);
        let lists = string_block_lists(&legacy_blocks, coll.len());

        let blocks = sper_blocking::TokenBlocking::default().build(&coll);
        let emissions: Vec<Comparison> = Pbs::from_blocks(blocks, scheme).collect();
        let pairs = pairs_of(&emissions);
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        prop_assert_eq!(distinct.len(), pairs.len(), "LeCoBI must dedup exactly");
        prop_assert_eq!(&distinct, &reference);
        for c in &emissions {
            let expected = sper_blocking::legacy::string_weight(
                &legacy_blocks, &lists, coll.kind(), c.pair.first, c.pair.second, scheme,
            );
            prop_assert!((c.weight - expected).abs() < 1e-9,
                "weight of {:?}: {} vs seed {}", c.pair, c.weight, expected);
        }
    }

    /// PPS (kmax ≥ |P|, unpruned blocks): cumulative emission set equals
    /// the seed-semantics distinct-pair set, each pair at most once per
    /// scheduling rule.
    #[test]
    fn pps_emissions_match_seed_semantics(coll in any_collection()) {
        let reference = reference_pair_set(&coll);
        let blocks = sper_blocking::TokenBlocking::default().build(&coll);
        let kmax = coll.len().max(1);
        let emissions: Vec<Comparison> =
            Pps::from_blocks(blocks, WeightingScheme::Arcs, kmax).collect();
        let distinct: HashSet<Pair> = pairs_of(&emissions).iter().copied().collect();
        prop_assert_eq!(&distinct, &reference);
    }

    /// SA-PSN / LS-PSN / GS-PSN: identical emission sequences over the
    /// interned Neighbor List and the seed-semantics list.
    #[test]
    fn similarity_methods_match_seed_list(coll in any_collection(), seed in 0u64..100) {
        let interned_nl = NeighborList::build(&coll, seed);
        let seed_nl = neighbor_list_from_seed_build(&coll, seed);
        // The substrate itself is bit-identical...
        prop_assert_eq!(interned_nl.as_slice(), seed_nl.as_slice());

        // ...and so is every method's emission sequence on top of it.
        let a: Vec<Comparison> = SaPsn::from_neighbor_list(&coll, interned_nl.clone()).collect();
        let b: Vec<Comparison> = SaPsn::from_neighbor_list(&coll, seed_nl.clone()).collect();
        prop_assert_eq!(pairs_of(&a), pairs_of(&b));

        let a: Vec<Comparison> = LsPsn::from_neighbor_list(
            &coll, interned_nl.clone(), Default::default()).collect();
        let b: Vec<Comparison> = LsPsn::from_neighbor_list(
            &coll, seed_nl.clone(), Default::default()).collect();
        prop_assert_eq!(pairs_of(&a), pairs_of(&b));

        let a: Vec<Comparison> = GsPsn::from_neighbor_list(
            &coll, interned_nl, 5, Default::default()).collect();
        let b: Vec<Comparison> = GsPsn::from_neighbor_list(
            &coll, seed_nl, 5, Default::default()).collect();
        prop_assert_eq!(pairs_of(&a), pairs_of(&b));
    }

    /// SA-PSAB over the interned suffix forest is deterministic and emits
    /// exactly its forest's comparisons in forest order.
    #[test]
    fn sa_psab_emits_forest_comparisons(coll in dirty_collection()) {
        let forest = sper_blocking::SuffixForest::build(&coll, 3);
        let mut expected: Vec<Pair> = Vec::new();
        for node in forest.nodes() {
            expected.extend(node.block.comparisons(forest.kind()));
        }
        let emissions: Vec<Comparison> = sper_core::sa_psab::SaPsab::new(&coll, 3).collect();
        prop_assert_eq!(pairs_of(&emissions), expected);
    }

    /// PSN (schema-based baseline) is untouched by interning: same
    /// emission sequence run-to-run.
    #[test]
    fn psn_still_deterministic(coll in dirty_collection(), seed in 0u64..50) {
        let keys: Vec<String> = coll.iter().map(|p| p.concat_values().to_lowercase()).collect();
        let a: Vec<Comparison> = Psn::new(&coll, &keys, seed).collect();
        let b: Vec<Comparison> = Psn::new(&coll, &keys, seed).collect();
        prop_assert_eq!(pairs_of(&a), pairs_of(&b));
    }

    /// The parallel engine pins the sequential emission order for **all
    /// seven methods**: at any thread count in 1–8, `build_method` with
    /// `threads = t` produces the exact comparison sequence (pairs *and*
    /// weights) of the sequential engine. This is the property that makes
    /// `--threads` safe to default to the machine's parallelism.
    /// (These proptest collections sit below the spawn-threshold, so the
    /// per-refill fan-outs take their inline path here; the dedicated
    /// `parallel_paths_engage_above_spawn_threshold` test below covers the
    /// genuinely sharded execution.)
    #[test]
    fn all_methods_emit_identically_at_any_thread_count(
        coll in any_collection(),
        seed in 0u64..50,
        threads in 2usize..9,
    ) {
        // Raw token blocks (no purging/filtering) keep the equality-based
        // methods exhaustive on these tiny collections; small wmax keeps
        // GS-PSN bounded. PSN needs schema keys.
        let keys: Vec<String> =
            coll.iter().map(|p| p.concat_values().to_lowercase()).collect();
        let config_at = |t: usize| {
            let mut c = MethodConfig {
                seed,
                wmax: 4,
                ..MethodConfig::default()
            };
            c.workflow.purge_ratio = 1.0;
            c.workflow.filter_ratio = 1.0;
            c.threads = Parallelism::new(t).unwrap();
            c
        };
        for method in [
            ProgressiveMethod::Psn,
            ProgressiveMethod::SaPsn,
            ProgressiveMethod::SaPsab,
            ProgressiveMethod::LsPsn,
            ProgressiveMethod::GsPsn,
            ProgressiveMethod::Pbs,
            ProgressiveMethod::Pps,
        ] {
            if method.is_schema_based() && coll.kind() != ErKind::Dirty {
                continue;
            }
            let schema_keys = method.is_schema_based().then_some(&keys[..]);
            // Cap the naive exhaustive methods: their tails are long and
            // order-equivalence of a long prefix is the property we need.
            let budget = 500;
            let sequential: Vec<Comparison> =
                build_method(method, &coll, &config_at(1), schema_keys)
                    .take(budget)
                    .collect();
            let parallel: Vec<Comparison> =
                build_method(method, &coll, &config_at(threads), schema_keys)
                    .take(budget)
                    .collect();
            prop_assert_eq!(
                sequential.len(),
                parallel.len(),
                "{} length diverged at {} threads", method, threads
            );
            for (s, p) in sequential.iter().zip(&parallel) {
                prop_assert_eq!(s.pair, p.pair, "{} order diverged at {} threads", method, threads);
                prop_assert!(
                    (s.weight - p.weight).abs() < 1e-12,
                    "{} weight diverged at {} threads: {} vs {}",
                    method, threads, s.weight, p.weight
                );
            }
        }
    }
}

/// Above the spawn break-even (`MIN_PARALLEL_BATCH`) the advanced methods
/// genuinely shard — parallel window weighting, per-block fan-out, sharded
/// refills — and the emission sequence must still match the sequential
/// engine exactly. 2 600 profiles put the iterated range, the hub block's
/// pair list (C(70,2) = 2 415 pairs) and the refill batches all above the
/// threshold.
#[test]
fn parallel_paths_engage_above_spawn_threshold() {
    let mut b = ProfileCollectionBuilder::dirty();
    for i in 0..2_600u32 {
        let mut text = format!("t{}", i % 1_300);
        if i < 70 {
            text.push_str(" hub");
        }
        b.add_profile([("t", text)]);
    }
    let coll = b.build();
    let config_at = |t: usize| {
        let mut c = MethodConfig {
            wmax: 3,
            ..MethodConfig::default()
        };
        c.workflow.purge_ratio = 1.0;
        c.workflow.filter_ratio = 1.0;
        c.threads = Parallelism::new(t).unwrap();
        c
    };
    for method in [
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ] {
        // Past 1 300 singleton-block emissions so PBS reaches the hub
        // block's parallel refill inside the budget.
        let budget = 2_000;
        let sequential: Vec<Comparison> = build_method(method, &coll, &config_at(1), None)
            .take(budget)
            .collect();
        for threads in [2usize, 4] {
            let parallel: Vec<Comparison> = build_method(method, &coll, &config_at(threads), None)
                .take(budget)
                .collect();
            assert_eq!(
                sequential.len(),
                parallel.len(),
                "{method} length diverged at {threads} threads"
            );
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    s.pair, p.pair,
                    "{method} order diverged at {threads} threads"
                );
                assert!((s.weight - p.weight).abs() < 1e-12);
            }
        }
    }
}
