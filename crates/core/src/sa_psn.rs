//! Schema-Agnostic Progressive Sorted Neighborhood (SA-PSN), §4.1.
//!
//! The naïve schema-agnostic adaptation of PSN: the sliding window with
//! incremental size runs over the schema-agnostic **Neighbor List** (every
//! profile placed once per distinct attribute-value token, sorted
//! alphabetically). Parameter-free, `O(1)` emission — but it emits repeated
//! comparisons (the same pair can co-occur in many windows) and its order
//! inside equal-key runs is coincidental (§4.1), which is what the advanced
//! methods fix.

use crate::{Comparison, ProgressiveEr};
use sper_blocking::neighbor_list::NeighborList;
use sper_model::{Pair, ProfileCollection};

/// The naïve similarity-based method.
#[derive(Debug)]
pub struct SaPsn<'a> {
    profiles: &'a ProfileCollection,
    nl: NeighborList,
    window: usize,
    pos: usize,
    max_window: usize,
}

impl<'a> SaPsn<'a> {
    /// Initialization phase: builds the Neighbor List (equal-key runs
    /// shuffled with `seed`) and starts at window size 1.
    ///
    /// ```
    /// use sper_core::sa_psn::SaPsn;
    /// use sper_model::{Pair, ProfileCollectionBuilder, ProfileId};
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white")]);
    /// b.add_profile([("name", "karl white")]);
    /// let profiles = b.build();
    /// let pairs: Vec<Pair> = SaPsn::new(&profiles, 42).map(|c| c.pair).collect();
    /// // Both profiles share "white": the pair surfaces at window 1.
    /// assert!(pairs.contains(&Pair::new(ProfileId(0), ProfileId(1))));
    /// ```
    pub fn new(profiles: &'a ProfileCollection, seed: u64) -> Self {
        Self::from_neighbor_list(profiles, NeighborList::build(profiles, seed))
    }

    /// Builds SA-PSN over an externally maintained Neighbor List — the
    /// streaming path (`sper-stream`).
    pub fn from_neighbor_list(profiles: &'a ProfileCollection, nl: NeighborList) -> Self {
        assert_eq!(
            nl.position_index().n_profiles(),
            profiles.len(),
            "Neighbor List indexes a different profile count"
        );
        let max_window = nl.len().saturating_sub(1);
        Self {
            profiles,
            nl,
            window: 1,
            pos: 0,
            max_window,
        }
    }

    /// Bounds the maximum window size (the exhaustive default compares
    /// everything with everything, which is rarely wanted in experiments).
    pub fn with_max_window(mut self, max_window: usize) -> Self {
        self.max_window = max_window.min(self.nl.len().saturating_sub(1));
        self
    }

    /// The underlying Neighbor List.
    pub fn neighbor_list(&self) -> &NeighborList {
        &self.nl
    }

    /// Current window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Iterator for SaPsn<'_> {
    type Item = Comparison;

    fn next(&mut self) -> Option<Comparison> {
        let n = self.nl.len();
        loop {
            if self.window > self.max_window {
                return None;
            }
            if self.pos + self.window >= n {
                self.window += 1;
                self.pos = 0;
                continue;
            }
            let a = self.nl.profile_at(self.pos);
            let b = self.nl.profile_at(self.pos + self.window);
            self.pos += 1;
            // Windows may span the same profile twice, or two profiles of
            // the same source (Clean-clean) — §4.1 requires skipping both.
            if self.profiles.is_valid_comparison(a, b) {
                return Some(Comparison::new(Pair::new(a, b), 0.0));
            }
        }
    }
}

impl ProgressiveEr for SaPsn<'_> {
    fn method_name(&self) -> &'static str {
        "SA-PSN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_model::{Pair, ProfileCollectionBuilder, ProfileId};
    use std::collections::HashSet;

    #[test]
    fn finds_all_fig3_matches_within_small_windows() {
        // Fig. 4(b): SA-PSN finds all matching profiles within w = 1 on the
        // schema-agnostic Neighbor List. With tie shuffling the exact
        // emission ranks vary, but every match must surface by window 2
        // (matching profiles share several adjacent tokens).
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let sa = SaPsn::new(&profiles, 7).with_max_window(2);
        let found: HashSet<Pair> = sa
            .map(|c| c.pair)
            .filter(|p| truth.is_match_pair(*p))
            .collect();
        assert_eq!(found.len(), truth.num_matches());
    }

    #[test]
    fn emits_repeated_comparisons() {
        // The same pair co-occurs around several shared tokens → repeats,
        // the documented drawback of SA-PSN.
        let profiles = fig3_profiles();
        let sa = SaPsn::new(&profiles, 7).with_max_window(1);
        let pairs: Vec<Pair> = sa.map(|c| c.pair).collect();
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        assert!(
            pairs.len() > distinct.len(),
            "window-1 emissions should contain repeats: {pairs:?}"
        );
    }

    #[test]
    fn skips_same_profile_adjacency() {
        // One profile with two alphabetically consecutive tokens occupies
        // consecutive positions; that "comparison" must be skipped.
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "aaa aab")]);
        b.add_profile([("t", "zzz")]);
        let coll = b.build();
        let sa = SaPsn::new(&coll, 0);
        for c in sa {
            assert_ne!(c.pair.first, c.pair.second);
        }
    }

    #[test]
    fn clean_clean_cross_source_only() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("t", "alpha beta")]);
        b.add_profile([("t", "alpha gamma")]);
        b.start_second_source();
        b.add_profile([("t", "beta gamma")]);
        let coll = b.build();
        let sa = SaPsn::new(&coll, 0).with_max_window(3);
        for c in sa {
            assert!(coll.is_valid_comparison(c.pair.first, c.pair.second));
        }
    }

    #[test]
    fn exhausts_and_terminates() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "x")]);
        b.add_profile([("t", "y")]);
        let coll = b.build();
        let emissions: Vec<_> = SaPsn::new(&coll, 0).collect();
        // NL = [p?, p?]; only window 1 yields the single pair.
        assert_eq!(emissions.len(), 1);
        assert_eq!(emissions[0].pair, Pair::new(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn eventual_quality_covers_all_co_occurring_pairs() {
        // Running to exhaustion, every pair of profiles that share any
        // region of the list is compared — same eventual quality as batch.
        let profiles = fig3_profiles();
        let distinct: HashSet<Pair> = SaPsn::new(&profiles, 1).map(|c| c.pair).collect();
        // All 15 pairs co-occur (every profile holds "white").
        assert_eq!(distinct.len(), 15);
    }
}
