//! Progressive Block Scheduling (PBS), §5.2.1, Algorithms 3–4.
//!
//! The block-centric equality-based method:
//!
//! 1. build a redundancy-positive block collection (Token Blocking
//!    Workflow);
//! 2. **Block Scheduling** — sort blocks by non-decreasing cardinality
//!    (small = distinctive = likely to contain duplicates, `w(b) = 1/‖b‖`);
//! 3. process one block at a time: discard repeated comparisons with the
//!    **LeCoBI** condition, weight the new ones from the Blocking Graph via
//!    the Profile Index, and emit them in non-increasing weight.

use crate::emitter::EmissionList;
use crate::{Comparison, ProgressiveEr};
use sper_blocking::{
    BlockCollection, BlockId, Parallelism, ProfileIndex, TokenBlockingWorkflow, WeightAccumulator,
    WeightingScheme,
};
use sper_model::{ErKind, Pair, ProfileCollection, ProfileId};

/// The advanced equality-based method with block-level scheduling.
#[derive(Debug)]
pub struct Pbs {
    blocks: BlockCollection,
    index: ProfileIndex,
    scheme: WeightingScheme,
    next_block: usize,
    list: EmissionList,
    /// Reusable sparse-accumulator scratch of the anchor-sweep refill
    /// (transient by design — never persisted, rebuilt on rehydration).
    acc: WeightAccumulator,
    /// Forward neighborhood volume per profile: the number of scratch
    /// updates a forward sweep of that profile costs. The refill's
    /// sweep-vs-merge break-even gate reads this.
    forward_volume: Vec<u64>,
}

impl Pbs {
    /// Initialization phase (Algorithm 3): runs the Token Blocking Workflow,
    /// schedules the blocks and prepares the first block's comparisons.
    ///
    /// ```
    /// use sper_blocking::WeightingScheme;
    /// use sper_core::pbs::Pbs;
    /// use sper_model::ProfileCollectionBuilder;
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white ny tailor")]);
    /// b.add_profile([("name", "karl white ny tailor")]);
    /// let profiles = b.build();
    /// let best = Pbs::new(&profiles, WeightingScheme::Arcs)
    ///     .next()
    ///     .expect("the pair shares blocks");
    /// assert!(best.weight > 0.0);
    /// ```
    pub fn new(profiles: &ProfileCollection, scheme: WeightingScheme) -> Self {
        Self::with_workflow(profiles, scheme, &TokenBlockingWorkflow::default())
    }

    /// Like [`Self::new`] with an explicit blocking workflow configuration.
    pub fn with_workflow(
        profiles: &ProfileCollection,
        scheme: WeightingScheme,
        workflow: &TokenBlockingWorkflow,
    ) -> Self {
        Self::from_blocks(workflow.run(profiles), scheme)
    }

    /// Builds PBS from an existing redundancy-positive block collection
    /// (any schema-agnostic blocking method works, §5.2).
    pub fn from_blocks(blocks: BlockCollection, scheme: WeightingScheme) -> Self {
        Self::from_blocks_par(blocks, scheme, Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::from_blocks`], weighting each scheduled block's
    /// comparisons on `par` worker threads and emitting through the sharded
    /// tournament list. Emission order is identical to the sequential
    /// engine: the LeCoBI dedup is a per-pair predicate and the batch
    /// concatenation preserves the block's comparison order.
    pub fn from_blocks_par(
        mut blocks: BlockCollection,
        scheme: WeightingScheme,
        par: Parallelism,
    ) -> Self {
        blocks.retain_comparable();
        blocks.sort_by_cardinality(); // Block Scheduling
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        // One pass over the member CSR: how many scratch updates a forward
        // sweep of each profile would cost (Σ over its blocks of the
        // forward partition size) — the refill gate compares this against
        // the per-pair merge cost.
        let mut forward_volume = vec![0u64; n];
        for block in blocks.iter() {
            match blocks.kind() {
                ErKind::Dirty => {
                    let members = block.profiles();
                    for (x, &p) in members.iter().enumerate() {
                        forward_volume[p.index()] += (members.len() - 1 - x) as u64;
                    }
                }
                ErKind::CleanClean => {
                    let partners = block.second_source().len() as u64;
                    for &p in block.first_source() {
                        forward_volume[p.index()] += partners;
                    }
                }
            }
        }
        let mut this = Self {
            blocks,
            index,
            scheme,
            next_block: 0,
            list: EmissionList::new(par),
            acc: WeightAccumulator::new(n),
            forward_volume,
        };
        this.fill_next_block();
        this
    }

    /// The scheduled block collection.
    pub fn blocks(&self) -> &BlockCollection {
        &self.blocks
    }

    /// Number of blocks processed so far.
    pub fn blocks_processed(&self) -> usize {
        self.next_block
    }

    /// LeCoBI-filters and weights one block's comparison slice with
    /// per-pair merge intersections — the unit of work of the sharded
    /// refill (and the reference the anchor-sweep path is tested against:
    /// both produce the identical comparison sequence).
    fn weigh_pairs(
        index: &ProfileIndex,
        scheme: WeightingScheme,
        bid: BlockId,
        pairs: &[Pair],
    ) -> Vec<Comparison> {
        pairs
            .iter()
            // LeCoBI: keep the comparison only in its least common block.
            .filter(|pair| index.is_new_comparison(pair.first, pair.second, bid))
            .map(|&pair| {
                let w = index.weight(pair.first, pair.second, scheme);
                Comparison::new(pair, w)
            })
            .collect()
    }

    /// One block's non-repeated weighted comparisons via per-anchor
    /// sparse-accumulator sweeps — no `Vec<Pair>` materialization, no
    /// per-pair merge intersections when the sweep is cheaper.
    ///
    /// For each anchor (a member with in-block partners after it), either
    /// one forward sweep produces every partner's weight **and** LeCoBI
    /// witness in `O(forward_volume)` total, or — when the anchor sits in
    /// many large blocks but has few partners here — the classic per-pair
    /// merge path is cheaper and is taken instead. Both sides of the gate
    /// emit bit-identical comparisons, so the gate is purely a wall-clock
    /// heuristic.
    fn fill_block_sequential(&mut self, bid: BlockId, batch: &mut Vec<Comparison>) {
        let Self {
            blocks,
            index,
            acc,
            forward_volume,
            scheme,
            ..
        } = self;
        let scheme = *scheme;
        let kind = blocks.kind();
        let block = blocks.get(bid);
        let members = block.profiles();
        let mut anchor = |i: ProfileId, partners: &[ProfileId]| {
            if partners.is_empty() {
                return;
            }
            // Sweep cost ≈ forward_volume[i] scratch updates; per-pair cost
            // ≈ partners · (|B_i| + |B_j|) merge steps, lower-bounded by
            // partners · 2|B_i| on redundancy-positive collections.
            let merge_est =
                (partners.len() as u64).saturating_mul(2 * index.blocks_of(i).len() as u64);
            if forward_volume[i.index()] <= merge_est {
                acc.sweep_forward(kind, blocks, index, scheme, i);
                for &j in partners {
                    // LeCoBI: keep the pair only where the sweep first saw
                    // it — its least common block.
                    if acc.least_common_block(j) == bid {
                        batch.push(Comparison::new(
                            Pair::new(i, j),
                            acc.finalize(index, scheme, i, j),
                        ));
                    }
                }
                acc.reset();
            } else {
                for &j in partners {
                    if index.is_new_comparison(i, j, bid) {
                        batch.push(Comparison::new(Pair::new(i, j), index.weight(i, j, scheme)));
                    }
                }
            }
        };
        match kind {
            ErKind::Dirty => {
                for x in 0..members.len().saturating_sub(1) {
                    anchor(members[x], &members[x + 1..]);
                }
            }
            ErKind::CleanClean => {
                let seconds = block.second_source();
                for &i in block.first_source() {
                    anchor(i, seconds);
                }
            }
        }
    }

    /// Loads the next block's non-repeated comparisons into the Comparison
    /// List (Algorithm 3 lines 4–12): anchor sweeps on the sequential
    /// path, the LeCoBI filter and edge weighting fanned out over the
    /// configured workers for super-break-even blocks. Returns false when
    /// no block is left.
    fn fill_next_block(&mut self) -> bool {
        while self.next_block < self.blocks.len() {
            let bid = BlockId(self.next_block as u32);
            let par = self.list.parallelism();
            // Most token blocks are tiny; below the spawn break-even the
            // fan-out would cost more than the weighting it distributes.
            let cardinality = self.blocks.cardinality(bid) as usize;
            let mut batch: Vec<Comparison> = Vec::new();
            if par.is_sequential() || cardinality < crate::emitter::MIN_PARALLEL_BATCH {
                self.fill_block_sequential(bid, &mut batch);
            } else {
                let kind = self.blocks.kind();
                let pairs = self.blocks.get(bid).comparisons(kind);
                let (index, scheme) = (&self.index, self.scheme);
                // Work-stealing chunks (no per-worker scratch: the LeCoBI
                // filter and weighting read shared state only); the batch
                // is a pure function of the pair range, so chunk-order
                // concatenation reproduces the fixed-range output.
                batch = par
                    .steal_chunks(
                        pairs.len(),
                        sper_blocking::STEAL_MIN_CHUNK,
                        || (),
                        |(), range, _chunk| Self::weigh_pairs(index, scheme, bid, &pairs[range]),
                    )
                    .concat();
            }
            self.next_block += 1;
            if !batch.is_empty() {
                self.list.refill(batch);
                return true;
            }
        }
        false
    }
}

impl Iterator for Pbs {
    type Item = Comparison;

    /// Emission phase (Algorithm 4): next best comparison of the current
    /// block, refilling from the next scheduled block when dry.
    fn next(&mut self) -> Option<Comparison> {
        loop {
            if let Some(c) = self.list.remove_first() {
                return Some(c);
            }
            if !self.fill_next_block() {
                return None;
            }
        }
    }
}

impl ProgressiveEr for Pbs {
    fn method_name(&self) -> &'static str {
        "PBS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::TokenBlocking;
    use sper_model::{Pair, ProfileCollectionBuilder, ProfileId};
    use std::collections::HashSet;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    /// PBS over the raw Fig. 3(b) blocks (no purging/filtering), matching
    /// Example 5 / Fig. 7.
    fn fig3_pbs() -> Pbs {
        let blocks = TokenBlocking::default().build(&fig3_profiles());
        Pbs::from_blocks(blocks, WeightingScheme::Arcs)
    }

    #[test]
    fn fig7_emission_order() {
        // Fig. 7: the singleton-comparison blocks (carl, ml, teacher) come
        // first; c12 and c45 are emitted once each (LeCoBI discards their
        // repeats in later blocks), and both precede any non-matching pair.
        let emissions: Vec<Comparison> = fig3_pbs().collect();
        let pairs: Vec<Pair> = emissions.iter().map(|c| c.pair).collect();
        let c12 = Pair::new(pid(0), pid(1));
        let c45 = Pair::new(pid(3), pid(4));
        let first_three: HashSet<Pair> = pairs[..3].iter().copied().collect();
        assert!(first_three.contains(&c12), "c12 among first emissions");
        assert!(first_three.contains(&c45), "c45 among first emissions");
        // No repeats at all: LeCoBI is exact.
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        assert_eq!(distinct.len(), pairs.len());
        // Eventually all 15 co-occurring pairs are emitted exactly once.
        assert_eq!(pairs.len(), 15);
    }

    #[test]
    fn lecobi_example_from_paper() {
        // Example 5: c45 satisfies LeCoBI in its first block (ml or teacher,
        // whichever scheduled first) and is discarded afterwards.
        let pairs: Vec<Pair> = fig3_pbs().map(|c| c.pair).collect();
        let c45 = Pair::new(pid(3), pid(4));
        assert_eq!(pairs.iter().filter(|&&p| p == c45).count(), 1);
    }

    #[test]
    fn within_block_sorted_by_weight() {
        // Drive PBS one block at a time: inside each block's batch the
        // weights must drain in non-increasing order.
        let mut pbs = fig3_pbs();
        let mut current_block = pbs.blocks_processed();
        let mut prev = f64::INFINITY;
        while let Some(c) = pbs.next() {
            if pbs.blocks_processed() != current_block {
                current_block = pbs.blocks_processed();
                prev = f64::INFINITY;
            }
            assert!(c.weight <= prev + 1e-12, "within-block order violated");
            prev = c.weight;
            // All pairs share ≥ 1 block → strictly positive ARCS weights.
            assert!(c.weight > 0.0);
        }
    }

    #[test]
    fn matches_outrank_non_matches_early() {
        let truth = fig3_ground_truth();
        let first4: Vec<Pair> = fig3_pbs().take(4).map(|c| c.pair).collect();
        let hits = first4.iter().filter(|p| truth.is_match_pair(**p)).count();
        assert!(
            hits >= 2,
            "early emissions should be match-heavy: {first4:?}"
        );
    }

    #[test]
    fn full_workflow_constructor() {
        let profiles = fig3_profiles();
        let pbs = Pbs::new(&profiles, WeightingScheme::Arcs);
        let total = pbs.count();
        assert!(total > 0);
    }

    #[test]
    fn clean_clean_cross_source() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("t", "acme corp ltd")]);
        b.add_profile([("t", "zenith inc")]);
        b.start_second_source();
        b.add_profile([("t", "acme corporation ltd")]);
        b.add_profile([("t", "zenith incorporated")]);
        let coll = b.build();
        let pbs = Pbs::new(&coll, WeightingScheme::Arcs);
        for c in pbs {
            assert!(coll.is_valid_comparison(c.pair.first, c.pair.second));
        }
    }

    #[test]
    fn empty_input_terminates() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let mut pbs = Pbs::new(&coll, WeightingScheme::Arcs);
        assert!(pbs.next().is_none());
    }

    #[test]
    fn anchor_sweep_and_merge_paths_emit_identically() {
        // Both sides of the refill gate — forward sparse-accumulator
        // sweeps and per-pair LeCoBI merges — must produce the same
        // comparison sequence with bit-equal weights for every block,
        // dirty and clean-clean, under every scheme.
        let dirty = {
            let mut b = ProfileCollectionBuilder::dirty();
            for i in 0..60u32 {
                let base = i % 24;
                b.add_profile([("t", format!("tok{} shared{} white", base, base % 5))]);
            }
            b.build()
        };
        let clean = {
            let mut b = ProfileCollectionBuilder::clean_clean();
            for i in 0..30u32 {
                b.add_profile([("t", format!("tok{} white", i % 12))]);
            }
            b.start_second_source();
            for i in 0..30u32 {
                b.add_profile([("t", format!("tok{} white", i % 10))]);
            }
            b.build()
        };
        for coll in [dirty, clean] {
            for scheme in WeightingScheme::ALL {
                let blocks = TokenBlocking::default().build(&coll);
                let mut pbs = Pbs::from_blocks(blocks, scheme);
                let kind = pbs.blocks.kind();
                for bid in 0..pbs.blocks.len() as u32 {
                    let bid = sper_blocking::BlockId(bid);
                    let mut swept = Vec::new();
                    pbs.fill_block_sequential(bid, &mut swept);
                    let pairs = pbs.blocks.get(bid).comparisons(kind);
                    let merged = Pbs::weigh_pairs(&pbs.index, scheme, bid, &pairs);
                    assert_eq!(swept.len(), merged.len(), "block {bid:?}");
                    for (a, b) in swept.iter().zip(&merged) {
                        assert_eq!(a.pair, b.pair, "block {bid:?}");
                        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn works_with_all_schemes() {
        let profiles = fig3_profiles();
        for scheme in WeightingScheme::ALL {
            let blocks = TokenBlocking::default().build(&profiles);
            let n = Pbs::from_blocks(blocks, scheme).count();
            assert_eq!(n, 15, "scheme {scheme} must not change coverage");
        }
    }
}
