//! The dense co-occurrence scratch of the similarity-based methods — the
//! neighbor-list twin of the blocking layer's sparse-accumulator kernel
//! ([`sper_blocking::WeightAccumulator`]).
//!
//! LS-PSN and GS-PSN count how often each candidate neighbor co-occurs
//! with the current profile inside sliding windows of the Neighbor List.
//! Exactly like the block-side kernel, the counts live in one dense
//! reusable array indexed by profile id, with a touched list making resets
//! `O(degree)` — no `HashMap`, no per-window allocation. The scratch is
//! transient by design: it is a pure function of the substrate it scans,
//! so it is never persisted (`sper-store` rebuilds it on rehydration).

use sper_model::ProfileId;

/// Dense per-neighbor co-occurrence counter with a touched list.
#[derive(Debug, Clone, Default)]
pub(crate) struct CooccurrenceScratch {
    /// Co-occurrence frequency per candidate neighbor id; `0` doubles as
    /// the "untouched" sentinel.
    freq: Vec<u32>,
    /// Neighbor ids with non-zero frequency, in first-touch order.
    touched: Vec<u32>,
}

impl CooccurrenceScratch {
    /// A zeroed scratch over `n_profiles` profiles.
    pub(crate) fn new(n_profiles: usize) -> Self {
        Self {
            freq: vec![0; n_profiles],
            touched: Vec::new(),
        }
    }

    /// Counts one co-occurrence of neighbor `j`.
    #[inline]
    pub(crate) fn bump(&mut self, j: ProfileId) {
        if self.freq[j.index()] == 0 {
            self.touched.push(j.0);
        }
        self.freq[j.index()] += 1;
    }

    /// Hands every `(neighbor, frequency)` of the current profile to `f`
    /// in first-touch order, zeroing the scratch as it goes — the
    /// `O(degree)` reset.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(ProfileId, u32)) {
        for t in 0..self.touched.len() {
            let j = ProfileId(self.touched[t]);
            f(j, std::mem::take(&mut self.freq[j.index()]));
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_drain_round_trip() {
        let mut s = CooccurrenceScratch::new(4);
        s.bump(ProfileId(2));
        s.bump(ProfileId(2));
        s.bump(ProfileId(0));
        let mut out = Vec::new();
        s.drain(|j, f| out.push((j.0, f)));
        // First-touch order, correct counts.
        assert_eq!(out, vec![(2, 2), (0, 1)]);
        // Drained scratch is fully reset.
        let mut empty = Vec::new();
        s.drain(|j, f| empty.push((j.0, f)));
        assert!(empty.is_empty());
        s.bump(ProfileId(2));
        let mut again = Vec::new();
        s.drain(|j, f| again.push((j.0, f)));
        assert_eq!(again, vec![(2, 1)]);
    }
}
