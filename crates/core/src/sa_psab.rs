//! Schema-Agnostic Progressive Suffix Arrays Blocking (SA-PSAB), §4.2.
//!
//! The naïve block-based method: every attribute-value token contributes all
//! suffixes of at least `lmin` characters; the resulting suffix forest is
//! processed *leaves first, root last* (longest suffixes first; within a
//! layer, smallest blocks first), emitting every comparison of each block in
//! turn. It is the easiest-to-configure hierarchy method (`lmin` is the only
//! parameter) and the schema-agnostic analogue of the hierarchical method
//! of \[9\], but the huge root blocks make it unscalable — the finding of
//! §7.2.

use crate::{Comparison, ProgressiveEr};
use sper_blocking::suffix_forest::SuffixForest;
use sper_model::{Pair, ProfileCollection};

/// The naïve hierarchy-based method.
#[derive(Debug)]
pub struct SaPsab {
    forest: SuffixForest,
    node_idx: usize,
    buffer: Vec<Pair>,
    buf_idx: usize,
}

impl SaPsab {
    /// Default minimum suffix length (characters).
    pub const DEFAULT_LMIN: usize = 3;

    /// Initialization phase: extracts every suffix of length ≥ `lmin` from
    /// every attribute-value token and schedules the suffix forest.
    ///
    /// ```
    /// use sper_core::sa_psab::SaPsab;
    /// use sper_model::{Pair, ProfileCollectionBuilder, ProfileId};
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "montgomery")]);
    /// b.add_profile([("name", "montgomery")]);
    /// b.add_profile([("name", "unrelated")]);
    /// let profiles = b.build();
    /// // The long shared suffix puts the duplicate pair first.
    /// let first = SaPsab::new(&profiles, 3).next().unwrap();
    /// assert_eq!(first.pair, Pair::new(ProfileId(0), ProfileId(1)));
    /// ```
    pub fn new(profiles: &ProfileCollection, lmin: usize) -> Self {
        Self {
            forest: SuffixForest::build(profiles, lmin),
            node_idx: 0,
            buffer: Vec::new(),
            buf_idx: 0,
        }
    }

    /// The scheduled suffix forest.
    pub fn forest(&self) -> &SuffixForest {
        &self.forest
    }
}

impl Iterator for SaPsab {
    type Item = Comparison;

    fn next(&mut self) -> Option<Comparison> {
        loop {
            if self.buf_idx < self.buffer.len() {
                let pair = self.buffer[self.buf_idx];
                self.buf_idx += 1;
                // All comparisons of one block share the same (implicit)
                // likelihood; the suffix length is a natural proxy.
                let depth = self.forest.nodes()[self.node_idx - 1].suffix_len;
                return Some(Comparison::new(pair, f64::from(depth)));
            }
            let node = self.forest.nodes().get(self.node_idx)?;
            self.buffer = node.block.comparisons(self.forest.kind());
            self.buf_idx = 0;
            self.node_idx += 1;
        }
    }
}

impl ProgressiveEr for SaPsab {
    fn method_name(&self) -> &'static str {
        "SA-PSAB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::{ProfileCollectionBuilder, ProfileId};
    use std::collections::HashSet;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn leaves_before_roots() {
        // gain/pain share "ain"; join/coin share "oin"; all share "in".
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("w", "gain")]);
        b.add_profile([("w", "pain")]);
        b.add_profile([("w", "join")]);
        b.add_profile([("w", "coin")]);
        let coll = b.build();
        let emissions: Vec<Comparison> = SaPsab::new(&coll, 2).collect();
        // Layer-3 blocks (ain, oin) first: 1 + 1 comparisons; then the
        // 4-profile root "in": 6 comparisons.
        assert_eq!(emissions.len(), 8);
        let first_two: HashSet<Pair> = emissions[..2].iter().map(|c| c.pair).collect();
        assert!(first_two.contains(&Pair::new(pid(0), pid(1))));
        assert!(first_two.contains(&Pair::new(pid(2), pid(3))));
        // Depth proxy non-increasing.
        let depths: Vec<f64> = emissions.iter().map(|c| c.weight).collect();
        assert!(depths.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn repeats_across_layers() {
        // The "ain" pair repeats inside "in": naïve methods do not dedup.
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("w", "gain")]);
        b.add_profile([("w", "pain")]);
        let coll = b.build();
        let pairs: Vec<Pair> = SaPsab::new(&coll, 2).map(|c| c.pair).collect();
        assert_eq!(pairs.len(), 2); // once in "ain", again in "in".
        assert!(pairs.iter().all(|&p| p == Pair::new(pid(0), pid(1))));
    }

    #[test]
    fn matches_surface_before_unrelated_pairs() {
        // A duplicate pair sharing a long token is emitted before pairs
        // that only share a short suffix.
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("name", "montgomery")]);
        b.add_profile([("name", "montgomery")]);
        b.add_profile([("name", "zontgomery")]); // shares suffix only
        let coll = b.build();
        let first = SaPsab::new(&coll, 3).next().unwrap();
        assert_eq!(first.pair, Pair::new(pid(0), pid(1)));
    }

    #[test]
    fn empty_collection_terminates() {
        let coll = ProfileCollectionBuilder::dirty().build();
        assert!(SaPsab::new(&coll, 3).next().is_none());
    }

    #[test]
    fn lmin_controls_forest_size() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("w", "abcdef")]);
        b.add_profile([("w", "abcdef")]);
        let coll = b.build();
        let deep = SaPsab::new(&coll, 2);
        let shallow = SaPsab::new(&coll, 5);
        assert!(deep.forest().len() > shallow.forest().len());
    }

    #[test]
    fn method_name() {
        let coll = ProfileCollectionBuilder::dirty().build();
        assert_eq!(SaPsab::new(&coll, 3).method_name(), "SA-PSAB");
    }
}
