//! Progressive Sorted Neighborhood (PSN) — the schema-based state of the
//! art the paper compares against (§2, \[4\], \[5\]).
//!
//! Every profile is represented by a single **schema-based blocking key**
//! (e.g. for census: Soundex of the surname + initials + zip code, footnote
//! 6). Profiles are sorted alphabetically by key and comparisons are emitted
//! through a sliding window of iteratively incremented size: first all pairs
//! at distance 1, then distance 2, and so on (Fig. 4(a)).
//!
//! PSN requires domain expertise to choose the key — which is exactly the
//! limitation the schema-agnostic methods remove.

use crate::{Comparison, ProgressiveEr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sper_model::{Pair, ProfileCollection, ProfileId};

/// The schema-based Progressive Sorted Neighborhood baseline.
#[derive(Debug)]
pub struct Psn<'a> {
    profiles: &'a ProfileCollection,
    /// Profiles sorted by their schema-based key; each appears exactly once.
    order: Vec<ProfileId>,
    window: usize,
    pos: usize,
}

impl<'a> Psn<'a> {
    /// Initialization phase: sorts the profiles by `keys` (one key per
    /// profile, indexed by id). Equal keys are shuffled with `seed` —
    /// coincidental proximity affects PSN too (§4.1).
    ///
    /// ```
    /// use sper_core::psn::Psn;
    /// use sper_model::{ProfileCollectionBuilder, ProfileId};
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white")]);
    /// b.add_profile([("name", "zoe black")]);
    /// b.add_profile([("name", "carla white")]);
    /// let profiles = b.build();
    /// // Schema-based keys: here, the name itself.
    /// let keys = vec!["carl".into(), "zoe".into(), "carla".into()];
    /// let first = Psn::new(&profiles, &keys, 42).next().unwrap();
    /// // The key-adjacent Carls are compared first (window 1).
    /// assert_eq!(first.pair.first, ProfileId(0));
    /// assert_eq!(first.pair.second, ProfileId(2));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `keys.len() != profiles.len()`.
    pub fn new(profiles: &'a ProfileCollection, keys: &[String], seed: u64) -> Self {
        assert_eq!(
            keys.len(),
            profiles.len(),
            "one schema-based key per profile"
        );
        let mut order: Vec<ProfileId> = profiles.iter().map(|p| p.id).collect();
        order.sort_by(|a, b| keys[a.index()].cmp(&keys[b.index()]));

        // Shuffle equal-key runs.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut start = 0;
        while start < order.len() {
            let mut end = start + 1;
            while end < order.len() && keys[order[end].index()] == keys[order[start].index()] {
                end += 1;
            }
            if end - start > 1 {
                order[start..end].shuffle(&mut rng);
            }
            start = end;
        }

        Self {
            profiles,
            order,
            window: 1,
            pos: 0,
        }
    }

    /// The sorted list of profiles (for inspection).
    pub fn sorted_order(&self) -> &[ProfileId] {
        &self.order
    }

    /// Current window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Iterator for Psn<'_> {
    type Item = Comparison;

    fn next(&mut self) -> Option<Comparison> {
        let n = self.order.len();
        loop {
            if self.window >= n {
                return None;
            }
            if self.pos + self.window >= n {
                self.window += 1;
                self.pos = 0;
                continue;
            }
            let a = self.order[self.pos];
            let b = self.order[self.pos + self.window];
            self.pos += 1;
            if self.profiles.is_valid_comparison(a, b) {
                return Some(Comparison::new(Pair::new(a, b), 0.0));
            }
        }
    }
}

impl ProgressiveEr for Psn<'_> {
    fn method_name(&self) -> &'static str {
        "PSN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;
    use std::collections::HashSet;

    fn coll_with_keys(keys: &[&str]) -> (ProfileCollection, Vec<String>) {
        let mut b = ProfileCollectionBuilder::dirty();
        for k in keys {
            b.add_profile([("key", *k)]);
        }
        (b.build(), keys.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn emits_window_one_first() {
        let (coll, keys) = coll_with_keys(&["b", "a", "c"]);
        let mut psn = Psn::new(&coll, &keys, 0);
        // Sorted order: a(p1), b(p0), c(p2).
        assert_eq!(
            psn.sorted_order(),
            &[ProfileId(1), ProfileId(0), ProfileId(2)]
        );
        let c1 = psn.next().unwrap();
        assert_eq!(c1.pair, Pair::new(ProfileId(1), ProfileId(0)));
        let c2 = psn.next().unwrap();
        assert_eq!(c2.pair, Pair::new(ProfileId(0), ProfileId(2)));
        // Window 2: a–c.
        let c3 = psn.next().unwrap();
        assert_eq!(c3.pair, Pair::new(ProfileId(1), ProfileId(2)));
        assert!(psn.next().is_none());
    }

    #[test]
    fn emits_every_pair_exactly_once() {
        let (coll, keys) = coll_with_keys(&["d", "b", "a", "c", "e"]);
        let psn = Psn::new(&coll, &keys, 3);
        let pairs: Vec<Pair> = psn.map(|c| c.pair).collect();
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        assert_eq!(pairs.len(), 10, "C(5,2) emissions");
        assert_eq!(distinct.len(), 10, "no repeats: each profile once in list");
    }

    #[test]
    fn clean_clean_skips_same_source() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("k", "a")]);
        b.add_profile([("k", "b")]);
        b.start_second_source();
        b.add_profile([("k", "c")]);
        let coll = b.build();
        let keys = vec!["a".into(), "b".into(), "c".into()];
        let psn = Psn::new(&coll, &keys, 0);
        let pairs: Vec<Pair> = psn.map(|c| c.pair).collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs
            .iter()
            .all(|p| coll.is_valid_comparison(p.first, p.second)));
    }

    #[test]
    fn tie_shuffling_is_seeded() {
        let (coll, keys) = coll_with_keys(&["x", "x", "x", "x", "x", "x"]);
        let a = Psn::new(&coll, &keys, 1).sorted_order().to_vec();
        let b = Psn::new(&coll, &keys, 1).sorted_order().to_vec();
        assert_eq!(a, b, "same seed, same order");
        let c = Psn::new(&coll, &keys, 2).sorted_order().to_vec();
        assert_ne!(a, c, "different seed permutes the tie run");
    }

    #[test]
    fn matching_keys_are_adjacent() {
        // A duplicate pair with identical keys is emitted at window 1,
        // before any far-apart pair: the similarity principle.
        let (coll, keys) = coll_with_keys(&["aaa", "zzz", "aaa", "mmm"]);
        let psn = Psn::new(&coll, &keys, 0);
        let first = psn.take(1).next().unwrap().pair;
        assert_eq!(first, Pair::new(ProfileId(0), ProfileId(2)));
    }

    #[test]
    #[should_panic(expected = "one schema-based key per profile")]
    fn key_count_mismatch_panics() {
        let (coll, _) = coll_with_keys(&["a", "b"]);
        let keys = vec!["only-one".to_string()];
        let _ = Psn::new(&coll, &keys, 0);
    }

    #[test]
    fn method_name() {
        let (coll, keys) = coll_with_keys(&["a"]);
        assert_eq!(Psn::new(&coll, &keys, 0).method_name(), "PSN");
    }
}
