//! Method registry and factory: build any progressive method from a shared
//! configuration — the entry point used by the evaluation harness.

use crate::gs_psn::GsPsn;
use crate::ls_psn::LsPsn;
use crate::pbs::Pbs;
use crate::pps::Pps;
use crate::psn::Psn;
use crate::rcf::NeighborWeighting;
use crate::sa_psab::SaPsab;
use crate::sa_psn::SaPsn;
use crate::ProgressiveEr;
use sper_blocking::{NeighborList, Parallelism, TokenBlockingWorkflow, WeightingScheme};
use sper_model::ProfileCollection;

/// The progressive methods of the paper (Fig. 2 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressiveMethod {
    /// Schema-based baseline (requires per-profile blocking keys).
    Psn,
    /// Naïve schema-agnostic sorted neighborhood (§4.1).
    SaPsn,
    /// Naïve progressive suffix-arrays blocking (§4.2).
    SaPsab,
    /// Local weighted sorted neighborhood (§5.1.1).
    LsPsn,
    /// Global weighted sorted neighborhood (§5.1.2).
    GsPsn,
    /// Progressive block scheduling (§5.2.1).
    Pbs,
    /// Progressive profile scheduling (§5.2.2).
    Pps,
}

impl ProgressiveMethod {
    /// The six schema-agnostic methods (everything but PSN).
    pub const SCHEMA_AGNOSTIC: [ProgressiveMethod; 6] = [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::SaPsab,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];

    /// The four advanced methods of §5.
    pub const ADVANCED: [ProgressiveMethod; 4] = [
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];

    /// Canonical acronym.
    pub fn name(self) -> &'static str {
        match self {
            ProgressiveMethod::Psn => "PSN",
            ProgressiveMethod::SaPsn => "SA-PSN",
            ProgressiveMethod::SaPsab => "SA-PSAB",
            ProgressiveMethod::LsPsn => "LS-PSN",
            ProgressiveMethod::GsPsn => "GS-PSN",
            ProgressiveMethod::Pbs => "PBS",
            ProgressiveMethod::Pps => "PPS",
        }
    }

    /// Whether the method needs schema-based blocking keys.
    pub fn is_schema_based(self) -> bool {
        self == ProgressiveMethod::Psn
    }

    /// Stable wire code of the method — the persistence format
    /// (`sper-store`) stores this byte; codes are append-only and never
    /// reassigned.
    pub fn code(self) -> u8 {
        match self {
            ProgressiveMethod::Psn => 0,
            ProgressiveMethod::SaPsn => 1,
            ProgressiveMethod::SaPsab => 2,
            ProgressiveMethod::LsPsn => 3,
            ProgressiveMethod::GsPsn => 4,
            ProgressiveMethod::Pbs => 5,
            ProgressiveMethod::Pps => 6,
        }
    }

    /// The method with the given wire code, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        [ProgressiveMethod::Psn]
            .into_iter()
            .chain(Self::SCHEMA_AGNOSTIC)
            .find(|m| m.code() == code)
    }
}

impl std::fmt::Display for ProgressiveMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared configuration for the factory, defaulting to the paper's §7
/// parameter configuration.
#[derive(Debug, Clone)]
pub struct MethodConfig {
    /// Seed for all tie-shuffling (coincidental proximity).
    pub seed: u64,
    /// GS-PSN window bound (`wmax`): 20 for structured datasets, 200 for
    /// large heterogeneous ones in the paper.
    pub wmax: usize,
    /// SA-PSAB minimum suffix length.
    pub lmin: usize,
    /// PPS per-profile emission cap.
    pub kmax: usize,
    /// Meta-blocking weighting scheme (ARCS in the paper).
    pub scheme: WeightingScheme,
    /// Sliding-window weighting (RCF in the paper).
    pub neighbor_weighting: NeighborWeighting,
    /// Blocking workflow for the equality-based methods.
    pub workflow: TokenBlockingWorkflow,
    /// Optional bound on SA-PSN's maximum window (None = exhaustive).
    pub max_window: Option<usize>,
    /// Worker threads of the parallel engine (1 = sequential). All methods
    /// emit the exact same comparison sequence at any thread count; threads
    /// only change initialization/refill wall-clock time.
    pub threads: Parallelism,
}

impl Default for MethodConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            wmax: GsPsn::WMAX_STRUCTURED,
            lmin: SaPsab::DEFAULT_LMIN,
            kmax: Pps::DEFAULT_KMAX,
            scheme: WeightingScheme::Arcs,
            neighbor_weighting: NeighborWeighting::Rcf,
            workflow: TokenBlockingWorkflow::default(),
            max_window: None,
            threads: Parallelism::SEQUENTIAL,
        }
    }
}

impl MethodConfig {
    /// The paper's configuration for large, heterogeneous datasets
    /// (`wmax = 200`).
    pub fn heterogeneous() -> Self {
        Self {
            wmax: GsPsn::WMAX_HETEROGENEOUS,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count of the parallel engine.
    pub fn with_threads(mut self, threads: Parallelism) -> Self {
        self.threads = threads;
        self
    }
}

/// Builds a boxed progressive method over `profiles`.
///
/// `schema_keys` is required for [`ProgressiveMethod::Psn`] (one key per
/// profile) and ignored otherwise.
///
/// # Panics
///
/// Panics when `method` is PSN and `schema_keys` is `None`.
pub fn build_method<'a>(
    method: ProgressiveMethod,
    profiles: &'a ProfileCollection,
    config: &MethodConfig,
    schema_keys: Option<&[String]>,
) -> Box<dyn ProgressiveEr + 'a> {
    let _span = sper_obs::span!(
        "core.build_method",
        method = method.name(),
        profiles = profiles.len(),
        threads = config.threads.get(),
    );
    let par = config.threads;
    // The schema-agnostic similarity methods share the (parallel) Neighbor
    // List build; equality methods fan out inside their own initialization.
    let par_nl = |seed: u64| {
        NeighborList::par_build(profiles, seed, par.get()).expect("Parallelism is validated")
    };
    match method {
        ProgressiveMethod::Psn => {
            let keys =
                schema_keys.expect("PSN is schema-based: provide one blocking key per profile");
            Box::new(Psn::new(profiles, keys, config.seed))
        }
        ProgressiveMethod::SaPsn => {
            let mut m = SaPsn::from_neighbor_list(profiles, par_nl(config.seed));
            if let Some(mw) = config.max_window {
                m = m.with_max_window(mw);
            }
            Box::new(m)
        }
        ProgressiveMethod::SaPsab => Box::new(SaPsab::new(profiles, config.lmin)),
        ProgressiveMethod::LsPsn => Box::new(LsPsn::from_neighbor_list_par(
            profiles,
            par_nl(config.seed),
            config.neighbor_weighting,
            par,
        )),
        ProgressiveMethod::GsPsn => Box::new(GsPsn::from_neighbor_list_par(
            profiles,
            par_nl(config.seed),
            config.wmax,
            config.neighbor_weighting,
            par,
        )),
        ProgressiveMethod::Pbs => Box::new(Pbs::from_blocks_par(
            config.workflow.run(profiles),
            config.scheme,
            par,
        )),
        ProgressiveMethod::Pps => Box::new(Pps::from_blocks_par(
            config.workflow.run(profiles),
            config.scheme,
            config.kmax,
            par,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};

    #[test]
    fn factory_builds_every_schema_agnostic_method() {
        let profiles = fig3_profiles();
        let config = MethodConfig::default();
        for method in ProgressiveMethod::SCHEMA_AGNOSTIC {
            let mut m = build_method(method, &profiles, &config, None);
            assert_eq!(m.method_name(), method.name());
            assert!(m.next().is_some(), "{method} should emit something");
        }
    }

    #[test]
    fn factory_builds_psn_with_keys() {
        let profiles = fig3_profiles();
        let keys: Vec<String> = profiles
            .iter()
            .map(|p| p.concat_values().to_lowercase())
            .collect();
        let mut m = build_method(
            ProgressiveMethod::Psn,
            &profiles,
            &MethodConfig::default(),
            Some(&keys),
        );
        assert_eq!(m.method_name(), "PSN");
        assert!(m.next().is_some());
    }

    #[test]
    #[should_panic(expected = "schema-based")]
    fn psn_without_keys_panics() {
        let profiles = fig3_profiles();
        let _ = build_method(
            ProgressiveMethod::Psn,
            &profiles,
            &MethodConfig::default(),
            None,
        );
    }

    #[test]
    fn advanced_methods_front_load_matches() {
        // Shared sanity check across the whole family: within the first
        // |DP| + 2 emissions, every advanced method finds at least half the
        // matches of the Fig. 3 example.
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        // wmax = 20 on a 24-position Neighbor List would count co-occurrence
        // at nearly every distance, washing out the signal; keep the window
        // range proportionate to this toy example.
        let config = MethodConfig {
            wmax: 3,
            ..MethodConfig::default()
        };
        for method in ProgressiveMethod::ADVANCED {
            let m = build_method(method, &profiles, &config, None);
            let budget = truth.num_matches() + 2;
            let hits = m
                .take(budget)
                .filter(|c| truth.is_match_pair(c.pair))
                .map(|c| c.pair)
                .collect::<std::collections::HashSet<_>>()
                .len();
            assert!(
                hits * 2 >= truth.num_matches(),
                "{method}: only {hits}/{} matches in first {budget} emissions",
                truth.num_matches()
            );
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = MethodConfig::default();
        assert_eq!(c.wmax, 20);
        assert_eq!(c.scheme, WeightingScheme::Arcs);
        assert_eq!(MethodConfig::heterogeneous().wmax, 200);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProgressiveMethod::LsPsn.to_string(), "LS-PSN");
        assert!(ProgressiveMethod::Psn.is_schema_based());
        assert!(!ProgressiveMethod::Pps.is_schema_based());
    }
}
