//! The Comparison List (§5): a batch of comparisons sorted in non-increasing
//! matching likelihood, consumed from the front during the emission phase
//! and refilled by the owning method when it runs dry.

use crate::Comparison;

/// A drainable list of comparisons kept in non-increasing weight order.
///
/// Refill–sort–drain is the shared emission machinery of all advanced
/// methods (LS-PSN, GS-PSN, PBS, PPS). Draining is O(1) per emission: the
/// list is sorted once per refill and consumed via a cursor.
#[derive(Debug, Clone, Default)]
pub struct ComparisonList {
    items: Vec<Comparison>,
    cursor: usize,
}

impl ComparisonList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no comparison is left to emit.
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.items.len()
    }

    /// Number of comparisons left to emit.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.cursor
    }

    /// Adds a comparison to the pending batch (call [`Self::sort_descending`]
    /// before draining).
    pub fn push(&mut self, c: Comparison) {
        self.items.push(c);
    }

    /// Replaces the contents with `batch`, resetting the cursor. The batch
    /// is sorted in non-increasing weight (ties broken by pair id so that
    /// emission order is fully deterministic).
    pub fn refill(&mut self, batch: Vec<Comparison>) {
        self.items = batch;
        self.cursor = 0;
        self.sort_descending();
    }

    /// Sorts the pending comparisons in non-increasing weight, ties by pair.
    pub fn sort_descending(&mut self) {
        self.items[self.cursor..].sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.pair.cmp(&b.pair))
        });
    }

    /// Removes and returns the best remaining comparison.
    pub fn remove_first(&mut self) -> Option<Comparison> {
        if self.is_empty() {
            // Release memory of fully drained batches.
            if !self.items.is_empty() {
                self.items.clear();
                self.cursor = 0;
            }
            return None;
        }
        let c = self.items[self.cursor];
        self.cursor += 1;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::{Pair, ProfileId};

    fn cmp(a: u32, b: u32, w: f64) -> Comparison {
        Comparison::new(Pair::new(ProfileId(a), ProfileId(b)), w)
    }

    #[test]
    fn drains_in_descending_weight() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, 0.2), cmp(2, 3, 0.9), cmp(4, 5, 0.5)]);
        let weights: Vec<f64> = std::iter::from_fn(|| list.remove_first())
            .map(|c| c.weight)
            .collect();
        assert_eq!(weights, vec![0.9, 0.5, 0.2]);
        assert!(list.is_empty());
    }

    #[test]
    fn ties_broken_by_pair_id() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(4, 5, 1.0), cmp(0, 1, 1.0), cmp(2, 3, 1.0)]);
        let pairs: Vec<Pair> = std::iter::from_fn(|| list.remove_first())
            .map(|c| c.pair)
            .collect();
        assert_eq!(
            pairs,
            vec![
                Pair::new(ProfileId(0), ProfileId(1)),
                Pair::new(ProfileId(2), ProfileId(3)),
                Pair::new(ProfileId(4), ProfileId(5)),
            ]
        );
    }

    #[test]
    fn refill_resets_cursor() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, 1.0)]);
        assert!(list.remove_first().is_some());
        assert!(list.remove_first().is_none());
        list.refill(vec![cmp(2, 3, 0.5)]);
        assert_eq!(list.remaining(), 1);
        assert_eq!(list.remove_first().unwrap().weight, 0.5);
    }

    #[test]
    fn push_then_sort() {
        let mut list = ComparisonList::new();
        list.push(cmp(0, 1, 0.1));
        list.push(cmp(0, 2, 0.7));
        list.sort_descending();
        assert_eq!(list.remove_first().unwrap().weight, 0.7);
    }

    #[test]
    fn nan_weights_do_not_panic() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, f64::NAN), cmp(2, 3, 1.0)]);
        // Order with NaN is unspecified but draining must be total.
        assert_eq!(std::iter::from_fn(|| list.remove_first()).count(), 2);
    }
}
