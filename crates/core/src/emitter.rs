//! The Comparison List (§5): a batch of comparisons sorted in non-increasing
//! matching likelihood, consumed from the front during the emission phase
//! and refilled by the owning method when it runs dry.
//!
//! Two engines share one observable behavior:
//!
//! * [`ComparisonList`] — the sequential engine: one sorted run drained by
//!   cursor.
//! * [`ShardedComparisonList`] — the parallel engine: the batch is split
//!   into contiguous shards, each shard sorted on its own worker thread,
//!   and emission pops the globally best front through a deterministic
//!   **tournament merge** (a max-heap over shard fronts keyed by the shared
//!   [`emission_order`], ties broken by shard index).
//!
//! Because [`emission_order`] is a strict total order whenever weights are
//! non-NaN and pairs are distinct within a batch (true for every method in
//! this crate), the tournament merge emits the exact sequence a full sort
//! would — sharding changes wall-clock time, never emission order.
//! [`EmissionList`] packages the choice so methods hold one field.

use crate::Comparison;
use sper_blocking::Parallelism;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The canonical emission order of every best-first engine: non-increasing
/// weight, ties broken by ascending pair id — fully deterministic.
///
/// Returns [`Ordering::Less`] when `a` must be emitted before `b`.
#[inline]
pub fn emission_order(a: &Comparison, b: &Comparison) -> Ordering {
    b.weight
        .partial_cmp(&a.weight)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.pair.cmp(&b.pair))
}

/// A drainable list of comparisons kept in non-increasing weight order.
///
/// Refill–sort–drain is the shared emission machinery of all advanced
/// methods (LS-PSN, GS-PSN, PBS, PPS). Draining is O(1) per emission: the
/// list is sorted once per refill and consumed via a cursor.
#[derive(Debug, Clone, Default)]
pub struct ComparisonList {
    items: Vec<Comparison>,
    cursor: usize,
}

impl ComparisonList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no comparison is left to emit.
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.items.len()
    }

    /// Number of comparisons left to emit.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.cursor
    }

    /// Adds a comparison to the pending batch (call [`Self::sort_descending`]
    /// before draining).
    pub fn push(&mut self, c: Comparison) {
        self.items.push(c);
    }

    /// Replaces the contents with `batch`, resetting the cursor. The batch
    /// is sorted in non-increasing weight (ties broken by pair id so that
    /// emission order is fully deterministic).
    pub fn refill(&mut self, batch: Vec<Comparison>) {
        self.items = batch;
        self.cursor = 0;
        self.sort_descending();
    }

    /// Sorts the pending comparisons in non-increasing weight, ties by pair.
    pub fn sort_descending(&mut self) {
        self.items[self.cursor..].sort_by(emission_order);
    }

    /// Removes and returns the best remaining comparison.
    pub fn remove_first(&mut self) -> Option<Comparison> {
        if self.is_empty() {
            // Release memory of fully drained batches.
            if !self.items.is_empty() {
                self.items.clear();
                self.cursor = 0;
            }
            return None;
        }
        let c = self.items[self.cursor];
        self.cursor += 1;
        Some(c)
    }
}

/// One shard's front in the tournament: the candidate comparison plus the
/// shard it came from (the deterministic tie-break).
#[derive(Debug, Clone, Copy)]
struct ShardFront {
    c: Comparison,
    shard: usize,
}

impl PartialEq for ShardFront {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ShardFront {}

impl PartialOrd for ShardFront {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShardFront {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: "greater" must mean "emits earlier".
        // `emission_order` returns Less for the earlier emission, so
        // reverse it; equal fronts resolve by the lower shard index (the
        // earlier batch chunk), keeping the merge a strict total order.
        emission_order(&self.c, &other.c)
            .reverse()
            .then_with(|| other.shard.cmp(&self.shard))
    }
}

/// The spawn break-even guard, shared with the blocking substrates (see
/// [`sper_blocking::MIN_PARALLEL_BATCH`]): below this work-item count the
/// parallel engines run inline on the calling thread.
pub(crate) const MIN_PARALLEL_BATCH: usize = sper_blocking::MIN_PARALLEL_BATCH;

/// The sharded best-first scheduler: per-shard sorted runs drained through
/// a deterministic tournament merge.
///
/// [`refill`](Self::refill) keeps the batch in one allocation, splits it
/// into `threads` contiguous shards via `chunks_mut` (no copy) and sorts
/// each on its own scoped worker thread; emission then costs
/// `O(log threads)` per comparison (one heap pop + push) instead of the
/// sequential engine's `O(1)` cursor — the price of sorting
/// `threads`-wide. Batches under `MIN_PARALLEL_BATCH` sort inline (one
/// shard, no spawn). The emitted sequence is **identical** to
/// [`ComparisonList`] on the same batch.
#[derive(Debug, Clone, Default)]
pub struct ShardedComparisonList {
    items: Vec<Comparison>,
    /// Per-shard `(cursor, end)` index pairs into `items`.
    shards: Vec<(usize, usize)>,
    heap: BinaryHeap<ShardFront>,
    remaining: usize,
}

impl ShardedComparisonList {
    /// Creates an empty sharded list.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no comparison is left to emit.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Number of comparisons left to emit.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Replaces the contents with `batch`: shards it in place, sorts every
    /// shard on its own worker thread, and seeds the tournament with each
    /// shard's front.
    pub fn refill(&mut self, batch: Vec<Comparison>, par: Parallelism) {
        let workers = if batch.len() < MIN_PARALLEL_BATCH {
            1
        } else {
            par.capped(batch.len()).get()
        };
        self.refill_with_workers(batch, workers);
    }

    /// [`Self::refill`] with the worker count already decided — the
    /// spawn-threshold-free core, also driven directly by the unit tests
    /// so the tournament merge is exercised on small batches.
    fn refill_with_workers(&mut self, mut batch: Vec<Comparison>, workers: usize) {
        self.remaining = batch.len();
        self.heap.clear();
        self.shards.clear();
        if batch.is_empty() {
            self.items.clear();
            return;
        }
        let chunk = batch.len().div_ceil(workers);
        if workers == 1 {
            batch.sort_by(emission_order);
        } else {
            crossbeam::thread::scope(|scope| {
                for shard in batch.chunks_mut(chunk) {
                    scope.spawn(move |_| shard.sort_by(emission_order));
                }
            })
            .expect("shard sort panicked");
        }
        let mut start = 0;
        while start < batch.len() {
            let end = (start + chunk).min(batch.len());
            self.heap.push(ShardFront {
                c: batch[start],
                shard: self.shards.len(),
            });
            self.shards.push((start, end));
            start = end;
        }
        self.items = batch;
    }

    /// Removes and returns the best remaining comparison: pops the
    /// tournament winner and advances that shard's cursor.
    pub fn remove_first(&mut self) -> Option<Comparison> {
        let front = self.heap.pop()?;
        let s = front.shard;
        self.shards[s].0 += 1;
        let (cursor, end) = self.shards[s];
        if cursor < end {
            self.heap.push(ShardFront {
                c: self.items[cursor],
                shard: s,
            });
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            // Release memory of fully drained batches.
            self.items.clear();
            self.shards.clear();
        }
        Some(front.c)
    }
}

/// The per-method emission engine: sequential cursor drain or sharded
/// tournament drain, chosen once at construction from the configured
/// [`Parallelism`]. Observable behavior is identical either way.
#[derive(Debug, Clone)]
pub enum EmissionList {
    /// One sorted run, drained by cursor ([`ComparisonList`]).
    Sequential(ComparisonList),
    /// Per-shard sorted runs, drained through the tournament merge.
    Sharded(ShardedComparisonList, Parallelism),
}

impl EmissionList {
    /// An empty engine for the given thread count (1 → sequential).
    pub fn new(par: Parallelism) -> Self {
        if par.is_sequential() {
            EmissionList::Sequential(ComparisonList::new())
        } else {
            EmissionList::Sharded(ShardedComparisonList::new(), par)
        }
    }

    /// Replaces the contents with `batch` (sorted sequentially or
    /// shard-parallel, emission order identical).
    pub fn refill(&mut self, batch: Vec<Comparison>) {
        // Per-batch (never per-pop) accounting keeps the drain loop clean.
        sper_obs::count!("emitter.refills");
        sper_obs::count!("emitter.refill_comparisons", batch.len() as u64);
        match self {
            EmissionList::Sequential(list) => list.refill(batch),
            EmissionList::Sharded(list, par) => list.refill(batch, *par),
        }
    }

    /// Removes and returns the best remaining comparison.
    pub fn remove_first(&mut self) -> Option<Comparison> {
        match self {
            EmissionList::Sequential(list) => list.remove_first(),
            EmissionList::Sharded(list, _) => list.remove_first(),
        }
    }

    /// True when no comparison is left to emit.
    pub fn is_empty(&self) -> bool {
        match self {
            EmissionList::Sequential(list) => list.is_empty(),
            EmissionList::Sharded(list, _) => list.is_empty(),
        }
    }

    /// Number of comparisons left to emit.
    pub fn remaining(&self) -> usize {
        match self {
            EmissionList::Sequential(list) => list.remaining(),
            EmissionList::Sharded(list, _) => list.remaining(),
        }
    }

    /// The configured worker count (1 for the sequential engine).
    pub fn parallelism(&self) -> Parallelism {
        match self {
            EmissionList::Sequential(_) => Parallelism::SEQUENTIAL,
            EmissionList::Sharded(_, par) => *par,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::{Pair, ProfileId};

    fn cmp(a: u32, b: u32, w: f64) -> Comparison {
        Comparison::new(Pair::new(ProfileId(a), ProfileId(b)), w)
    }

    #[test]
    fn drains_in_descending_weight() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, 0.2), cmp(2, 3, 0.9), cmp(4, 5, 0.5)]);
        let weights: Vec<f64> = std::iter::from_fn(|| list.remove_first())
            .map(|c| c.weight)
            .collect();
        assert_eq!(weights, vec![0.9, 0.5, 0.2]);
        assert!(list.is_empty());
    }

    #[test]
    fn ties_broken_by_pair_id() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(4, 5, 1.0), cmp(0, 1, 1.0), cmp(2, 3, 1.0)]);
        let pairs: Vec<Pair> = std::iter::from_fn(|| list.remove_first())
            .map(|c| c.pair)
            .collect();
        assert_eq!(
            pairs,
            vec![
                Pair::new(ProfileId(0), ProfileId(1)),
                Pair::new(ProfileId(2), ProfileId(3)),
                Pair::new(ProfileId(4), ProfileId(5)),
            ]
        );
    }

    #[test]
    fn refill_resets_cursor() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, 1.0)]);
        assert!(list.remove_first().is_some());
        assert!(list.remove_first().is_none());
        list.refill(vec![cmp(2, 3, 0.5)]);
        assert_eq!(list.remaining(), 1);
        assert_eq!(list.remove_first().unwrap().weight, 0.5);
    }

    #[test]
    fn push_then_sort() {
        let mut list = ComparisonList::new();
        list.push(cmp(0, 1, 0.1));
        list.push(cmp(0, 2, 0.7));
        list.sort_descending();
        assert_eq!(list.remove_first().unwrap().weight, 0.7);
    }

    #[test]
    fn nan_weights_do_not_panic() {
        let mut list = ComparisonList::new();
        list.refill(vec![cmp(0, 1, f64::NAN), cmp(2, 3, 1.0)]);
        // Order with NaN is unspecified but draining must be total.
        assert_eq!(std::iter::from_fn(|| list.remove_first()).count(), 2);
    }

    /// A deterministic pseudo-random batch with heavy weight ties.
    fn tie_heavy_batch(n: u32) -> Vec<Comparison> {
        (0..n)
            .map(|i| {
                let a = i.wrapping_mul(2654435761) % 97;
                let b = (a + 1 + i % 7) % 97 + 97;
                cmp(a, b, f64::from(i % 5))
            })
            .collect()
    }

    #[test]
    fn sharded_list_emits_exactly_the_sequential_sequence() {
        for threads in [2usize, 3, 4, 8] {
            let batch = tie_heavy_batch(257);
            let mut seq = ComparisonList::new();
            seq.refill(batch.clone());
            let mut par = ShardedComparisonList::new();
            // Force multi-shard sorting below the spawn threshold so the
            // tournament merge itself is what this test exercises.
            par.refill_with_workers(batch, threads);
            assert_eq!(par.remaining(), seq.remaining());
            loop {
                let (a, b) = (seq.remove_first(), par.remove_first());
                match (a, b) {
                    (None, None) => break,
                    (Some(a), Some(b)) => {
                        assert_eq!(a.pair, b.pair, "threads = {threads}");
                        assert_eq!(a.weight, b.weight);
                    }
                    _ => panic!("lengths diverged at threads = {threads}"),
                }
            }
        }
    }

    #[test]
    fn sharded_list_handles_empty_and_tiny_batches() {
        let mut list = ShardedComparisonList::new();
        list.refill(Vec::new(), Parallelism::new(4).unwrap());
        assert!(list.is_empty());
        assert!(list.remove_first().is_none());
        list.refill(vec![cmp(0, 1, 1.0)], Parallelism::new(8).unwrap());
        assert_eq!(list.remaining(), 1);
        assert_eq!(list.remove_first().unwrap().pair.first, ProfileId(0));
        assert!(list.remove_first().is_none());
    }

    #[test]
    fn sharded_list_refills_between_drains() {
        let mut list = ShardedComparisonList::new();
        list.refill_with_workers(tie_heavy_batch(10), 3);
        assert!(list.remove_first().is_some());
        // Refill mid-drain: previous contents replaced wholesale.
        list.refill_with_workers(vec![cmp(0, 1, 9.0), cmp(2, 3, 5.0)], 2);
        assert_eq!(list.remaining(), 2);
        assert_eq!(list.remove_first().unwrap().weight, 9.0);
        assert_eq!(list.remove_first().unwrap().weight, 5.0);
        assert!(list.remove_first().is_none());
    }

    #[test]
    fn emission_list_dispatches_by_parallelism() {
        let seq = EmissionList::new(Parallelism::SEQUENTIAL);
        assert!(matches!(seq, EmissionList::Sequential(_)));
        assert!(seq.parallelism().is_sequential());
        let par = EmissionList::new(Parallelism::new(4).unwrap());
        assert!(matches!(par, EmissionList::Sharded(..)));
        assert_eq!(par.parallelism().get(), 4);
        for mut list in [seq, par] {
            list.refill(tie_heavy_batch(50));
            assert_eq!(list.remaining(), 50);
            let mut prev = f64::INFINITY;
            while let Some(c) = list.remove_first() {
                assert!(c.weight <= prev);
                prev = c.weight;
            }
            assert!(list.is_empty());
        }
    }
}
