//! Global Schema-Agnostic PSN (GS-PSN), §5.1.2.
//!
//! GS-PSN removes LS-PSN's one weakness — the per-window (local) order that
//! re-emits pairs across windows — by accumulating co-occurrence frequencies
//! over **all** window sizes in `[1, wmax]` during initialization, then
//! emitting every comparison exactly once in one global order. The price is
//! the extra parameter `wmax` and `O(wmax · |p̄| · |P|)` space for the
//! precomputed Comparison List.

use crate::emitter::EmissionList;
use crate::rcf::NeighborWeighting;
use crate::scratch::CooccurrenceScratch;
use crate::{Comparison, ProgressiveEr};
use sper_blocking::neighbor_list::NeighborList;
use sper_blocking::Parallelism;
use sper_model::{Pair, ProfileCollection, ProfileId};

/// Accumulates co-occurrence frequencies over every window in `[1, wmax]`
/// for the profiles of `range` — the unit of work of both the sequential
/// and the sharded initialization, on the shared dense scratch (one per
/// worker, touched-list reset).
fn weight_all_windows_range(
    profiles: &ProfileCollection,
    nl: &NeighborList,
    wmax: usize,
    weighting: NeighborWeighting,
    range: std::ops::Range<u32>,
    scratch: &mut CooccurrenceScratch,
) -> Vec<Comparison> {
    let pi = nl.position_index();
    let mut batch: Vec<Comparison> = Vec::new();
    for i in range {
        let i = ProfileId(i);
        for &pos in pi.positions_of(i) {
            for w in 1..=wmax as isize {
                for probe in [pos as isize + w, pos as isize - w] {
                    let Some(j) = nl.get(probe) else { continue };
                    if j != i && crate::is_valid_similarity_neighbor(profiles, i, j) {
                        scratch.bump(j);
                    }
                }
            }
        }
        scratch.drain(|j, f| {
            let weight = weighting.weight(f, pi.num_positions(i), pi.num_positions(j));
            batch.push(Comparison::new(Pair::new(i, j), weight));
        });
    }
    batch
}

/// The advanced similarity-based method with a global execution order.
#[derive(Debug)]
pub struct GsPsn {
    list: EmissionList,
    wmax: usize,
    nl_len: usize,
}

impl GsPsn {
    /// Paper default for structured datasets (§7 parameter configuration).
    pub const WMAX_STRUCTURED: usize = 20;
    /// Paper default for large, heterogeneous datasets.
    pub const WMAX_HETEROGENEOUS: usize = 200;

    /// Initialization phase: one weighting pass accumulating co-occurrences
    /// over every window size in `[1, wmax]`, followed by a global sort.
    ///
    /// ```
    /// use sper_core::gs_psn::GsPsn;
    /// use sper_model::ProfileCollectionBuilder;
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white ny tailor")]);
    /// b.add_profile([("name", "karl white ny tailor")]);
    /// let profiles = b.build();
    /// let best = GsPsn::new(&profiles, 42, 5).next().expect("one pair exists");
    /// assert!(best.weight > 0.0);
    /// ```
    pub fn new(profiles: &ProfileCollection, seed: u64, wmax: usize) -> Self {
        Self::with_weighting(profiles, seed, wmax, NeighborWeighting::default())
    }

    /// Like [`Self::new`] with an explicit window weighting scheme.
    pub fn with_weighting(
        profiles: &ProfileCollection,
        seed: u64,
        wmax: usize,
        weighting: NeighborWeighting,
    ) -> Self {
        Self::from_neighbor_list(
            profiles,
            NeighborList::build(profiles, seed),
            wmax,
            weighting,
        )
    }

    /// Parallel initialization: builds the Neighbor List and runs the
    /// all-window accumulation on `par` worker threads, emitting the exact
    /// sequence of the sequential engine.
    pub fn with_weighting_par(
        profiles: &ProfileCollection,
        seed: u64,
        wmax: usize,
        weighting: NeighborWeighting,
        par: Parallelism,
    ) -> Self {
        let nl = NeighborList::par_build(profiles, seed, par.get())
            .expect("Parallelism is validated non-zero");
        Self::from_neighbor_list_par(profiles, nl, wmax, weighting, par)
    }

    /// Builds GS-PSN over an externally maintained Neighbor List — the
    /// streaming path (`sper-stream`).
    pub fn from_neighbor_list(
        profiles: &ProfileCollection,
        nl: NeighborList,
        wmax: usize,
        weighting: NeighborWeighting,
    ) -> Self {
        Self::from_neighbor_list_par(profiles, nl, wmax, weighting, Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::from_neighbor_list`], accumulating the `[1, wmax]`
    /// window weights over contiguous profile ranges on `par` worker
    /// threads (per-worker frequency scratch) and emitting through the
    /// sharded tournament list. Emission order is identical to the
    /// sequential engine.
    pub fn from_neighbor_list_par(
        profiles: &ProfileCollection,
        nl: NeighborList,
        wmax: usize,
        weighting: NeighborWeighting,
        par: Parallelism,
    ) -> Self {
        assert!(wmax >= 1, "wmax must be at least 1");
        assert_eq!(
            nl.position_index().n_profiles(),
            profiles.len(),
            "Neighbor List indexes a different profile count"
        );
        let wmax = wmax.min(nl.len().saturating_sub(1).max(1));

        let iterated = crate::iterated_profile_range(profiles);
        let nl_ref = &nl;
        // Work-stealing chunks with a per-worker frequency scratch; each
        // chunk's batch is a pure function of its profile range, so the
        // chunk-order concatenation reproduces the sequential sequence.
        let batch: Vec<Comparison> = par
            .steal_chunks(
                iterated.len(),
                sper_blocking::STEAL_MIN_CHUNK,
                || CooccurrenceScratch::new(profiles.len()),
                |scratch, range, _chunk| {
                    weight_all_windows_range(
                        profiles,
                        nl_ref,
                        wmax,
                        weighting,
                        range.start as u32..range.end as u32,
                        scratch,
                    )
                },
            )
            .concat();

        let mut list = EmissionList::new(par);
        let nl_len = nl.len();
        list.refill(batch);
        Self { list, wmax, nl_len }
    }

    /// The effective `wmax` in use.
    pub fn wmax(&self) -> usize {
        self.wmax
    }

    /// Comparisons left to emit.
    pub fn remaining(&self) -> usize {
        self.list.remaining()
    }

    /// Length of the underlying Neighbor List.
    pub fn neighbor_list_len(&self) -> usize {
        self.nl_len
    }
}

impl Iterator for GsPsn {
    type Item = Comparison;

    /// Emission phase: just returns the next best comparison — `O(1)`,
    /// no repeats — until the precomputed list is exhausted.
    fn next(&mut self) -> Option<Comparison> {
        self.list.remove_first()
    }
}

impl ProgressiveEr for GsPsn {
    fn method_name(&self) -> &'static str {
        "GS-PSN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_model::ProfileCollectionBuilder;
    use std::collections::HashSet;

    #[test]
    fn emits_no_repeated_comparison() {
        let profiles = fig3_profiles();
        let gs = GsPsn::new(&profiles, 7, 5);
        let pairs: Vec<Pair> = gs.map(|c| c.pair).collect();
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        assert_eq!(pairs.len(), distinct.len(), "GS-PSN never repeats");
    }

    #[test]
    fn weights_non_increasing_globally() {
        let profiles = fig3_profiles();
        let weights: Vec<f64> = GsPsn::new(&profiles, 7, 5).map(|c| c.weight).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn first_emission_is_a_match() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let first = GsPsn::new(&profiles, 7, 3).next().unwrap();
        assert!(truth.is_match_pair(first.pair));
    }

    #[test]
    fn finds_all_matches_with_generous_wmax() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let found: HashSet<Pair> = GsPsn::new(&profiles, 7, 23)
            .map(|c| c.pair)
            .filter(|p| truth.is_match_pair(*p))
            .collect();
        assert_eq!(found.len(), truth.num_matches());
    }

    #[test]
    fn wmax_bounds_the_search() {
        let profiles = fig3_profiles();
        let narrow = GsPsn::new(&profiles, 7, 1).count();
        let wide = GsPsn::new(&profiles, 7, 10).count();
        assert!(narrow < wide, "larger windows see more pairs");
    }

    #[test]
    fn accumulates_across_windows() {
        // A pair co-occurring at distances 1 and 2 gets frequency ≥ 2 in a
        // wmax=2 run — more than any single-window LS-PSN pass would see.
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "aa ab ac")]);
        b.add_profile([("t", "aa ab ac")]);
        let coll = b.build();
        let c = GsPsn::new(&coll, 0, 5).next().unwrap();
        // With all 6 placements interleaved, the pair's accumulated RCF
        // approaches 1.
        assert!(c.weight > 0.5, "accumulated weight should be high: {c:?}");
    }

    #[test]
    fn clean_clean_valid_only() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("t", "alpha beta")]);
        b.add_profile([("t", "beta gamma")]);
        b.start_second_source();
        b.add_profile([("t", "alpha gamma")]);
        let coll = b.build();
        for c in GsPsn::new(&coll, 0, 10) {
            assert!(coll.is_valid_comparison(c.pair.first, c.pair.second));
        }
    }

    #[test]
    #[should_panic(expected = "wmax")]
    fn zero_wmax_panics() {
        let profiles = fig3_profiles();
        let _ = GsPsn::new(&profiles, 0, 0);
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(GsPsn::WMAX_STRUCTURED, 20);
        assert_eq!(GsPsn::WMAX_HETEROGENEOUS, 200);
    }
}
