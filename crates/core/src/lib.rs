#![deny(missing_docs)]
//! # sper-core
//!
//! The paper's primary contribution: schema-agnostic **Progressive Entity
//! Resolution** methods (§4–§5 of Simonini et al.).
//!
//! Every method implements [`ProgressiveEr`]: construction is the
//! *initialization phase* (build the data structures and the first batch of
//! best comparisons), and each [`Iterator::next`] call is one *emission
//! phase* — it returns the remaining comparison with the highest estimated
//! matching likelihood (§3.1).
//!
//! | Method | Kind | Principle | Module |
//! |---|---|---|---|
//! | `PSN` | schema-based baseline | similarity | [`psn`] |
//! | `SA-PSN` | naïve schema-agnostic | similarity | [`sa_psn`] |
//! | `SA-PSAB` | naïve schema-agnostic | equality (hierarchical) | [`sa_psab`] |
//! | `LS-PSN` | advanced | similarity (local window order) | [`ls_psn`] |
//! | `GS-PSN` | advanced | similarity (global order, `wmax`) | [`gs_psn`] |
//! | `PBS` | advanced | equality (block scheduling) | [`pbs`] |
//! | `PPS` | advanced | equality (profile scheduling) | [`pps`] |
//!
//! The *Same Eventual Quality* requirement (§3.1) holds exhaustively for
//! PSN / SA-PSN / SA-PSAB / LS-PSN; GS-PSN bounds its search to windows
//! `1..=wmax`, and PBS / PPS inherit meta-blocking's pruning (PPS emits at
//! most `Kmax` comparisons per scheduled profile) — exactly as in the paper.

pub mod emitter;
pub mod gs_psn;
pub mod ls_psn;
pub mod method;
pub mod pbs;
pub mod pps;
pub mod psn;
pub mod rcf;
pub mod sa_psab;
pub mod sa_psn;
pub(crate) mod scratch;

pub use emitter::{emission_order, ComparisonList, EmissionList, ShardedComparisonList};
pub use method::{build_method, MethodConfig, ProgressiveMethod};
pub use rcf::{rcf_weight, NeighborWeighting};
// The thread-count boundary of the parallel engine, re-exported so method
// consumers don't need a direct sper-blocking dependency.
pub use sper_blocking::{Parallelism, ZeroThreads};

use sper_model::{ErKind, Pair, ProfileCollection, ProfileId, SourceId};

/// Whether `j` is a valid neighbor for the *iterated* profile `i` in the
/// similarity-based weighting passes (Algorithm 1 lines 10/14): Dirty ER
/// counts each pair from its larger endpoint only (`j < i`); Clean-clean
/// ER iterates `P1` profiles and accepts `P2` neighbors only.
#[inline]
pub(crate) fn is_valid_similarity_neighbor(
    profiles: &ProfileCollection,
    i: ProfileId,
    j: ProfileId,
) -> bool {
    match profiles.kind() {
        ErKind::Dirty => j < i,
        ErKind::CleanClean => profiles.source_of(j) == SourceId::SECOND,
    }
}

/// Profiles iterated by the similarity-based weighting passes: all of them
/// for Dirty ER, only `P1` for Clean-clean ER.
#[inline]
pub(crate) fn iterated_profile_range(profiles: &ProfileCollection) -> std::ops::Range<u32> {
    match profiles.kind() {
        ErKind::Dirty => 0..profiles.len() as u32,
        ErKind::CleanClean => 0..profiles.len_first() as u32,
    }
}

/// A comparison emitted by a progressive method: the profile pair plus the
/// method's estimate of its matching likelihood (0 for the naïve methods,
/// which do not weight comparisons).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The unordered profile pair to compare.
    pub pair: Pair,
    /// Estimated matching likelihood (scheme-dependent scale).
    pub weight: f64,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(pair: Pair, weight: f64) -> Self {
        Self { pair, weight }
    }
}

/// A progressive ER method: an iterator over comparisons in non-increasing
/// estimated matching likelihood (within the method's ordering discipline).
pub trait ProgressiveEr: Iterator<Item = Comparison> {
    /// The method's canonical acronym (e.g. `"LS-PSN"`).
    fn method_name(&self) -> &'static str;
}

#[cfg(test)]
mod comparison_tests {
    use super::*;
    use sper_model::ProfileId;

    #[test]
    fn comparison_holds_pair_and_weight() {
        let c = Comparison::new(Pair::new(ProfileId(3), ProfileId(1)), 0.5);
        assert_eq!(c.pair.first, ProfileId(1));
        assert_eq!(c.weight, 0.5);
    }
}
