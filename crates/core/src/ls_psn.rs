//! Local Schema-Agnostic PSN (LS-PSN), §5.1.1, Algorithms 1–2.
//!
//! LS-PSN trades a higher initialization cost for a much better comparison
//! order: instead of emitting window-`w` pairs in list order (SA-PSN), it
//! *weights* every comparison of the current window with the RCF scheme and
//! emits them in non-increasing weight. When the Comparison List of the
//! current window runs dry, the window is incremented and the weighting
//! pass repeats (a *local* execution order per window size — hence the
//! name; the same pair can resurface at a later window).
//!
//! Data structures: the Neighbor List array `NL` and the Position Index
//! `PI` (profile id → positions), both flat arrays as prescribed by the
//! paper ("a hash index … would increase both the space and the time
//! complexity").

use crate::emitter::EmissionList;
use crate::rcf::NeighborWeighting;
use crate::scratch::CooccurrenceScratch;
use crate::{Comparison, ProgressiveEr};
use sper_blocking::neighbor_list::NeighborList;
use sper_blocking::Parallelism;
use sper_model::{Pair, ProfileCollection, ProfileId};

/// One weighting pass over `range` at window size `w` (Algorithm 1 lines
/// 5–20) — the unit of work of both the sequential and the sharded engine,
/// on the shared dense scratch (one per worker, touched-list reset).
fn weight_window_range(
    profiles: &ProfileCollection,
    nl: &NeighborList,
    weighting: NeighborWeighting,
    w: isize,
    range: std::ops::Range<u32>,
    scratch: &mut CooccurrenceScratch,
) -> Vec<Comparison> {
    let pi = nl.position_index();
    let mut batch: Vec<Comparison> = Vec::new();
    for i in range {
        let i = ProfileId(i);
        for &pos in pi.positions_of(i) {
            for probe in [pos as isize + w, pos as isize - w] {
                let Some(j) = nl.get(probe) else {
                    continue;
                };
                if j != i && crate::is_valid_similarity_neighbor(profiles, i, j) {
                    scratch.bump(j);
                }
            }
        }
        scratch.drain(|j, f| {
            let weight = weighting.weight(f, pi.num_positions(i), pi.num_positions(j));
            batch.push(Comparison::new(Pair::new(i, j), weight));
        });
    }
    batch
}

/// The advanced similarity-based method with per-window (local) ordering.
#[derive(Debug)]
pub struct LsPsn<'a> {
    profiles: &'a ProfileCollection,
    nl: NeighborList,
    weighting: NeighborWeighting,
    window: usize,
    list: EmissionList,
    /// One scratch buffer per worker (a single one for the sequential
    /// engine), reused across window refills. Transient by design — never
    /// persisted, rebuilt on rehydration.
    scratch: Vec<CooccurrenceScratch>,
}

impl<'a> LsPsn<'a> {
    /// Initialization phase (Algorithm 1): builds `NL` and `PI`, weights the
    /// window-1 comparisons and sorts them into the Comparison List.
    ///
    /// ```
    /// use sper_core::ls_psn::LsPsn;
    /// use sper_model::ProfileCollectionBuilder;
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white ny tailor")]);
    /// b.add_profile([("name", "karl white ny tailor")]);
    /// let profiles = b.build();
    /// let best = LsPsn::new(&profiles, 42).next().expect("one pair exists");
    /// assert!(best.weight > 0.0);
    /// ```
    pub fn new(profiles: &'a ProfileCollection, seed: u64) -> Self {
        Self::with_weighting(profiles, seed, NeighborWeighting::default())
    }

    /// Like [`Self::new`] with an explicit window weighting scheme.
    pub fn with_weighting(
        profiles: &'a ProfileCollection,
        seed: u64,
        weighting: NeighborWeighting,
    ) -> Self {
        Self::from_neighbor_list(profiles, NeighborList::build(profiles, seed), weighting)
    }

    /// Parallel initialization: builds the Neighbor List and weights every
    /// window on `par` worker threads, emitting the exact sequence of the
    /// sequential engine.
    pub fn with_weighting_par(
        profiles: &'a ProfileCollection,
        seed: u64,
        weighting: NeighborWeighting,
        par: Parallelism,
    ) -> Self {
        let nl = NeighborList::par_build(profiles, seed, par.get())
            .expect("Parallelism is validated non-zero");
        Self::from_neighbor_list_par(profiles, nl, weighting, par)
    }

    /// Builds LS-PSN over an externally maintained Neighbor List — the
    /// streaming path (`sper-stream`), where the list is kept up to date
    /// incrementally instead of being rebuilt per run. The list must index
    /// exactly `profiles` (same profile count).
    pub fn from_neighbor_list(
        profiles: &'a ProfileCollection,
        nl: NeighborList,
        weighting: NeighborWeighting,
    ) -> Self {
        Self::from_neighbor_list_par(profiles, nl, weighting, Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::from_neighbor_list`], weighting each window's
    /// comparisons on `par` worker threads (per-worker scratch, contiguous
    /// profile ranges) and emitting through the sharded tournament list.
    /// Emission order is identical to the sequential engine.
    pub fn from_neighbor_list_par(
        profiles: &'a ProfileCollection,
        nl: NeighborList,
        weighting: NeighborWeighting,
        par: Parallelism,
    ) -> Self {
        assert_eq!(
            nl.position_index().n_profiles(),
            profiles.len(),
            "Neighbor List indexes a different profile count"
        );
        let n = profiles.len();
        let mut this = Self {
            profiles,
            nl,
            weighting,
            window: 1,
            list: EmissionList::new(par),
            scratch: vec![CooccurrenceScratch::new(n); par.get()],
        };
        this.fill_window();
        this
    }

    /// Current window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// One weighting pass over the current window (Algorithm 1 lines 5–20),
    /// fanned out over the configured workers.
    fn fill_window(&mut self) {
        let w = self.window as isize;
        let iterated = crate::iterated_profile_range(self.profiles);
        // One fill per window growth: below the spawn break-even, keep the
        // pass on the calling thread (per-worker scratch stays warm).
        let par = if iterated.len() < crate::emitter::MIN_PARALLEL_BATCH {
            sper_blocking::Parallelism::SEQUENTIAL
        } else {
            self.list.parallelism().capped(iterated.len())
        };
        let batch: Vec<Comparison> = if par.is_sequential() {
            weight_window_range(
                self.profiles,
                &self.nl,
                self.weighting,
                w,
                iterated,
                &mut self.scratch[0],
            )
        } else {
            let workers = par.get();
            let chunk = (iterated.len().div_ceil(workers)) as u32;
            let (profiles, nl, weighting) = (self.profiles, &self.nl, self.weighting);
            let mut results: Vec<Vec<Comparison>> = Vec::new();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self.scratch[..workers]
                    .iter_mut()
                    .enumerate()
                    .map(|(k, scratch)| {
                        let start = iterated.start + (k as u32) * chunk;
                        let end = (start + chunk).min(iterated.end);
                        scope.spawn(move |_| {
                            weight_window_range(profiles, nl, weighting, w, start..end, scratch)
                        })
                    })
                    .collect();
                results = handles.into_iter().map(|h| h.join().unwrap()).collect();
            })
            .expect("window weighting panicked");
            results.concat()
        };
        self.list.refill(batch);
    }
}

impl Iterator for LsPsn<'_> {
    type Item = Comparison;

    /// Emission phase (Algorithm 2): pop the best comparison; when the list
    /// for the current window is exhausted, grow the window and re-weight.
    fn next(&mut self) -> Option<Comparison> {
        loop {
            if let Some(c) = self.list.remove_first() {
                return Some(c);
            }
            self.window += 1;
            if self.window >= self.nl.len() {
                return None;
            }
            self.fill_window();
        }
    }
}

impl ProgressiveEr for LsPsn<'_> {
    fn method_name(&self) -> &'static str {
        "LS-PSN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_model::ProfileCollectionBuilder;
    use std::collections::HashSet;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn fig6_early_emissions_are_match_heavy() {
        // Example 4 / Fig. 6: at window 1 the top-weighted comparisons are
        // dominated by the duplicate pairs. With only six profiles the exact
        // ranks depend on the coincidental run order (our seeded shuffle vs.
        // the paper's illustration), so we assert the robust property: at
        // least two distinct true matches appear within the first five
        // emissions.
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let hits: HashSet<Pair> = LsPsn::new(&profiles, 7)
            .take(5)
            .map(|c| c.pair)
            .filter(|p| truth.is_match_pair(*p))
            .collect();
        assert!(hits.len() >= 2, "got {hits:?}");
    }

    #[test]
    fn window1_weights_non_increasing() {
        let profiles = fig3_profiles();
        let mut ls = LsPsn::new(&profiles, 7);
        let mut prev = f64::INFINITY;
        while ls.window() == 1 {
            let Some(c) = ls.next() else { break };
            if ls.window() > 1 {
                break;
            }
            assert!(c.weight <= prev + 1e-12);
            prev = c.weight;
        }
    }

    #[test]
    fn no_repeats_within_a_window() {
        let profiles = fig3_profiles();
        let mut ls = LsPsn::new(&profiles, 3);
        let mut seen: HashSet<Pair> = HashSet::new();
        loop {
            if ls.window() > 1 {
                break;
            }
            let Some(c) = ls.next() else { break };
            if ls.window() > 1 {
                break;
            }
            assert!(seen.insert(c.pair), "repeat within window: {c:?}");
        }
    }

    #[test]
    fn rcf_weight_values() {
        // Two profiles sharing both their tokens co-occur twice at w=1 when
        // their tokens are adjacent in the sorted key list.
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "aa ab")]);
        b.add_profile([("t", "aa ab")]);
        let coll = b.build();
        let mut ls = LsPsn::new(&coll, 0);
        let c = ls.next().unwrap();
        // NL is some interleaving of {p0, p1} runs for keys aa, ab; at w=1
        // freq ∈ {1, 2, 3} (a neighbor can be hit from both directions), so
        // RCF = f / max(2 + 2 − f, 1) is positive.
        assert!(c.weight > 0.0);
        assert_eq!(c.pair, Pair::new(pid(0), pid(1)));
    }

    #[test]
    fn clean_clean_emits_cross_source_only() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("t", "alpha beta gamma")]);
        b.add_profile([("t", "alpha delta")]);
        b.start_second_source();
        b.add_profile([("t", "alpha beta")]);
        let coll = b.build();
        let ls = LsPsn::new(&coll, 0);
        let pairs: Vec<Pair> = ls.take(50).map(|c| c.pair).collect();
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert!(coll.is_valid_comparison(p.first, p.second));
        }
    }

    #[test]
    fn terminates_on_exhaustion() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "x y")]);
        b.add_profile([("t", "y z")]);
        let coll = b.build();
        let count = LsPsn::new(&coll, 0).count();
        assert!(count > 0, "must emit something");
        // Termination is the assertion: count() returned.
    }

    #[test]
    fn repeats_possible_across_windows() {
        // LS-PSN "is likely to emit the same comparison multiple times, for
        // two or more different window sizes" (§5.1.2).
        let profiles = fig3_profiles();
        let pairs: Vec<Pair> = LsPsn::new(&profiles, 7).map(|c| c.pair).collect();
        let distinct: HashSet<Pair> = pairs.iter().copied().collect();
        assert!(pairs.len() > distinct.len());
    }

    #[test]
    fn eventual_quality_all_nearby_pairs_covered() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let found: HashSet<Pair> = LsPsn::new(&profiles, 5)
            .map(|c| c.pair)
            .filter(|p| truth.is_match_pair(*p))
            .collect();
        assert_eq!(found.len(), truth.num_matches());
    }

    #[test]
    fn frequency_weighting_variant() {
        let profiles = fig3_profiles();
        let ls = LsPsn::with_weighting(&profiles, 7, NeighborWeighting::Frequency);
        for c in ls.take(10) {
            assert!(c.weight >= 1.0, "raw counts are ≥ 1");
        }
    }
}
