//! The Relative Co-occurrence Frequency weighting scheme (§5.1) and its
//! variants for the weighted-Neighbor-List methods.

/// RCF weight of a comparison: the number of times the two profiles
/// co-occurred at the current window distance(s), normalized by their total
/// placements (§5.1.1):
///
/// `RCF(i, j) = freq / (|PI[i]| + |PI[j]| − freq)`
///
/// This is a Jaccard-style normalization: `freq` co-occurrences out of the
/// union of the two profiles' placements. When frequencies are accumulated
/// over several window sizes (GS-PSN) or hit the same neighbor from both
/// directions, `freq` can exceed the placement counts; the denominator is
/// clamped to 1 so the weight stays finite and monotone in `freq`.
#[inline]
pub fn rcf_weight(freq: u32, positions_i: usize, positions_j: usize) -> f64 {
    let denom = (positions_i as f64 + positions_j as f64 - f64::from(freq)).max(1.0);
    f64::from(freq) / denom
}

/// Which co-occurrence statistic the similarity-based methods use to weight
/// comparisons. LS-PSN/GS-PSN are "compatible with any other schema-agnostic
/// weighting scheme that infers the similarity of profiles exclusively from
/// their co-occurrences in the incremental sliding window" (§5.1); we expose
/// RCF (the paper's choice) plus the raw count for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborWeighting {
    /// Relative Co-occurrence Frequency (paper default).
    #[default]
    Rcf,
    /// Raw co-occurrence count (un-normalized ablation variant).
    Frequency,
}

impl NeighborWeighting {
    /// Computes the weight from a co-occurrence count and the two profiles'
    /// placement counts.
    #[inline]
    pub fn weight(self, freq: u32, positions_i: usize, positions_j: usize) -> f64 {
        match self {
            NeighborWeighting::Rcf => rcf_weight(freq, positions_i, positions_j),
            NeighborWeighting::Frequency => f64::from(freq),
        }
    }

    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NeighborWeighting::Rcf => "RCF",
            NeighborWeighting::Frequency => "CF",
        }
    }

    /// Stable wire code of the weighting — the persistence format
    /// (`sper-store`) stores this byte; codes are append-only and never
    /// reassigned.
    pub fn code(self) -> u8 {
        match self {
            NeighborWeighting::Rcf => 0,
            NeighborWeighting::Frequency => 1,
        }
    }

    /// The weighting with the given wire code, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(NeighborWeighting::Rcf),
            1 => Some(NeighborWeighting::Frequency),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcf_formula() {
        // freq 2, |PI[i]| = 4, |PI[j]| = 3 → 2 / (4 + 3 − 2) = 0.4.
        assert!((rcf_weight(2, 4, 3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rcf_full_overlap_is_one() {
        assert_eq!(rcf_weight(4, 4, 4), 1.0);
    }

    #[test]
    fn rcf_zero_freq_is_zero() {
        assert_eq!(rcf_weight(0, 5, 7), 0.0);
    }

    #[test]
    fn rcf_degenerate_denominator() {
        assert_eq!(rcf_weight(0, 0, 0), 0.0);
        // Accumulated frequency beyond the placement union stays finite and
        // monotone (denominator clamped to 1).
        assert_eq!(rcf_weight(5, 2, 2), 5.0);
        assert!(rcf_weight(5, 2, 2) > rcf_weight(4, 2, 2));
    }

    #[test]
    fn frequency_variant_is_identity() {
        assert_eq!(NeighborWeighting::Frequency.weight(3, 10, 10), 3.0);
        assert_eq!(NeighborWeighting::Rcf.name(), "RCF");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// RCF is in \[0, 1\] whenever freq ≤ min(|PI_i|, |PI_j|), symmetric,
        /// and monotone in freq.
        #[test]
        fn rcf_bounds(pi in 1usize..50, pj in 1usize..50, f in 0u32..50) {
            let f = f.min(pi.min(pj) as u32);
            let w = rcf_weight(f, pi, pj);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert_eq!(w, rcf_weight(f, pj, pi));
            if f > 0 {
                prop_assert!(w > rcf_weight(f - 1, pi, pj));
            }
        }
    }
}
