//! Progressive Profile Scheduling (PPS), §5.2.2, Algorithms 5–6.
//!
//! The entity-centric equality-based method. Every profile gets a
//! **duplication likelihood** — the average weight of its incident blocking-
//! graph edges. The initialization phase emits the top-weighted comparison
//! of every node (deduplicated); the emission phase then walks the Sorted
//! Profile List in decreasing duplication likelihood, emitting each
//! profile's `Kmax` best comparisons among not-yet-checked neighbors.
//!
//! `checkedEntities` makes the order profile-centric: once a profile has
//! been scheduled, its comparisons are never produced again from the other
//! endpoint — "the previously examined profile's higher duplication
//! likelihood provides more reliable evidence" (§5.2.2).
//!
//! Both phases run the shared sparse-accumulator kernel
//! ([`sper_blocking::WeightAccumulator`]): dense per-neighbor scratch, a
//! touched list for `O(degree)` resets, weights bit-identical to the
//! materialized blocking graph's.

use crate::emitter::EmissionList;
use crate::{Comparison, ProgressiveEr};
use sper_blocking::{
    BlockCollection, Parallelism, ProfileIndex, TokenBlockingWorkflow, WeightAccumulator,
    WeightingScheme,
};
use sper_model::{Pair, ProfileCollection, ProfileId};
use std::collections::HashMap;

/// One initialization shard's output: `(profile, duplication likelihood)`
/// entries in profile order plus the per-profile top comparisons.
type InitShard = (Vec<(ProfileId, f64)>, Vec<Comparison>);

/// Algorithm 5 over one contiguous profile range — the unit of work of
/// both the sequential and the sharded initialization, running the shared
/// sparse-accumulator kernel with per-worker scratch.
fn init_range(
    blocks: &BlockCollection,
    index: &ProfileIndex,
    scheme: WeightingScheme,
    range: std::ops::Range<u32>,
    acc: &mut WeightAccumulator,
) -> InitShard {
    let mut likelihood: Vec<(ProfileId, f64)> = Vec::new();
    let mut tops: Vec<Comparison> = Vec::new();
    for i in range {
        let i = ProfileId(i);
        acc.sweep(blocks.kind(), blocks, index, scheme, i, None);
        if acc.is_empty() {
            continue;
        }
        let mut dup = 0.0;
        let mut top: Option<Comparison> = None;
        // Finalize weights, pick the best, reset scratch.
        for t in 0..acc.touched().len() {
            let j = ProfileId(acc.touched()[t]);
            let w = acc.finalize(index, scheme, i, j);
            dup += w;
            let cand = Comparison::new(Pair::new(i, j), w);
            let better = match &top {
                None => true,
                Some(best) => w > best.weight || (w == best.weight && cand.pair < best.pair),
            };
            if better {
                top = Some(cand);
            }
        }
        dup /= acc.touched().len() as f64;
        likelihood.push((i, dup));
        acc.reset();
        if let Some(best) = top {
            tops.push(best);
        }
    }
    (likelihood, tops)
}

/// The advanced equality-based method with profile-level scheduling.
#[derive(Debug)]
pub struct Pps {
    blocks: BlockCollection,
    index: ProfileIndex,
    scheme: WeightingScheme,
    kmax: usize,
    /// Profiles in non-increasing duplication likelihood.
    sorted_profiles: Vec<ProfileId>,
    profile_cursor: usize,
    checked: Vec<bool>,
    list: EmissionList,
    /// The reusable sparse-accumulator scratch of the emission phase
    /// (transient by design — never persisted, rebuilt on rehydration).
    acc: WeightAccumulator,
}

impl Pps {
    /// Default number of comparisons gathered per scheduled profile.
    ///
    /// Must exceed the largest expected equivalence-cluster size, otherwise
    /// PPS cannot reach full recall on cluster-heavy datasets (cora's
    /// clusters reach 30 duplicates); 50 is a safe default.
    pub const DEFAULT_KMAX: usize = 50;

    /// Initialization phase (Algorithm 5) with the default Token Blocking
    /// Workflow.
    ///
    /// ```
    /// use sper_blocking::WeightingScheme;
    /// use sper_core::pps::Pps;
    /// use sper_model::ProfileCollectionBuilder;
    ///
    /// let mut b = ProfileCollectionBuilder::dirty();
    /// b.add_profile([("name", "carl white ny tailor")]);
    /// b.add_profile([("name", "karl white ny tailor")]);
    /// let profiles = b.build();
    /// let best = Pps::new(&profiles, WeightingScheme::Arcs)
    ///     .next()
    ///     .expect("the pair shares blocks");
    /// assert!(best.weight > 0.0);
    /// ```
    pub fn new(profiles: &ProfileCollection, scheme: WeightingScheme) -> Self {
        Self::with_workflow(
            profiles,
            scheme,
            &TokenBlockingWorkflow::default(),
            Self::DEFAULT_KMAX,
        )
    }

    /// Like [`Self::new`] with explicit workflow and `Kmax`.
    pub fn with_workflow(
        profiles: &ProfileCollection,
        scheme: WeightingScheme,
        workflow: &TokenBlockingWorkflow,
        kmax: usize,
    ) -> Self {
        Self::from_blocks(workflow.run(profiles), scheme, kmax)
    }

    /// Builds PPS from an existing redundancy-positive block collection.
    pub fn from_blocks(blocks: BlockCollection, scheme: WeightingScheme, kmax: usize) -> Self {
        Self::from_blocks_par(blocks, scheme, kmax, Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::from_blocks`], running the Algorithm-5 initialization
    /// (the top-k scheduling pass — PPS's dominant cost) over contiguous
    /// profile ranges on `par` worker threads with per-worker scratch, and
    /// emitting through the sharded tournament list. The Sorted Profile
    /// List and the emission order are identical to the sequential engine.
    pub fn from_blocks_par(
        mut blocks: BlockCollection,
        scheme: WeightingScheme,
        kmax: usize,
        par: Parallelism,
    ) -> Self {
        assert!(kmax >= 1, "kmax must be at least 1");
        blocks.retain_comparable();
        // Deterministic block order (cardinality) keeps runs reproducible;
        // PPS itself is insensitive to block order.
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();

        let mut this = Self {
            blocks,
            index,
            scheme,
            kmax,
            sorted_profiles: Vec::new(),
            profile_cursor: 0,
            checked: vec![false; n],
            list: EmissionList::new(par),
            acc: WeightAccumulator::new(n),
        };
        this.initialize();
        this
    }

    /// Algorithm 5: per profile, accumulate neighborhood weights, record the
    /// duplication likelihood and the top comparison — over contiguous
    /// profile ranges on the configured workers.
    fn initialize(&mut self) {
        let n = self.checked.len();
        let par = self.list.parallelism();
        let (blocks, index, scheme) = (&self.blocks, &self.index, self.scheme);
        // Work-stealing chunks with one accumulator per worker; each
        // chunk's shard is a pure function of its profile range, so
        // concatenating in chunk order is independent of which worker ran
        // what.
        let shards: Vec<InitShard> = par.steal_chunks(
            n,
            sper_blocking::STEAL_MIN_CHUNK,
            || WeightAccumulator::new(n),
            |acc, range, _chunk| {
                init_range(
                    blocks,
                    index,
                    scheme,
                    range.start as u32..range.end as u32,
                    acc,
                )
            },
        );
        // Concatenating in chunk order restores the sequential profile
        // order of both outputs.
        let mut likelihood: Vec<(ProfileId, f64)> = Vec::with_capacity(n);
        let mut tops: Vec<Comparison> = Vec::new();
        for (l, t) in shards {
            likelihood.extend(l);
            tops.extend(t);
        }

        likelihood.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        self.sorted_profiles = likelihood.into_iter().map(|(p, _)| p).collect();

        // Deduplicate the per-profile top comparisons (a pair can be the
        // top of both endpoints, with the same symmetric weight).
        let top_comparisons: HashMap<Pair, f64> =
            tops.into_iter().map(|c| (c.pair, c.weight)).collect();
        let batch: Vec<Comparison> = top_comparisons
            .into_iter()
            .map(|(pair, w)| Comparison::new(pair, w))
            .collect();
        self.list.refill(batch);
    }

    /// Algorithm 6 lines 4–19: schedule the next profile and gather its
    /// `Kmax` best comparisons among unchecked neighbors.
    fn fill_from_next_profile(&mut self) -> bool {
        while self.profile_cursor < self.sorted_profiles.len() {
            let i = self.sorted_profiles[self.profile_cursor];
            self.profile_cursor += 1;
            self.checked[i.index()] = true;

            self.acc.sweep(
                self.blocks.kind(),
                &self.blocks,
                &self.index,
                self.scheme,
                i,
                Some(&self.checked),
            );
            if self.acc.is_empty() {
                continue;
            }
            let mut batch: Vec<Comparison> = Vec::with_capacity(self.acc.touched().len());
            for t in 0..self.acc.touched().len() {
                let j = ProfileId(self.acc.touched()[t]);
                let w = self.acc.finalize(&self.index, self.scheme, i, j);
                batch.push(Comparison::new(Pair::new(i, j), w));
            }
            self.acc.reset();
            // SortedStack semantics: keep only the Kmax best.
            batch.sort_by(crate::emission_order);
            batch.truncate(self.kmax);
            self.list.refill(batch);
            return true;
        }
        false
    }

    /// The Sorted Profile List (for inspection/tests).
    pub fn sorted_profile_list(&self) -> &[ProfileId] {
        &self.sorted_profiles
    }

    /// `Kmax` in use.
    pub fn kmax(&self) -> usize {
        self.kmax
    }
}

impl Iterator for Pps {
    type Item = Comparison;

    /// Emission phase (Algorithm 6).
    fn next(&mut self) -> Option<Comparison> {
        loop {
            if let Some(c) = self.list.remove_first() {
                return Some(c);
            }
            if !self.fill_from_next_profile() {
                return None;
            }
        }
    }
}

impl ProgressiveEr for Pps {
    fn method_name(&self) -> &'static str {
        "PPS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::TokenBlocking;
    use sper_model::ProfileCollectionBuilder;
    use std::collections::HashSet;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    /// PPS over the raw Fig. 3(b) blocks, matching Example 6 / Fig. 8.
    fn fig3_pps(kmax: usize) -> Pps {
        let blocks = TokenBlocking::default().build(&fig3_profiles());
        Pps::from_blocks(blocks, WeightingScheme::Arcs, kmax)
    }

    #[test]
    fn fig8a_initial_comparison_list() {
        // Fig. 8(a): the initialization emits the per-node top comparisons
        // in decreasing weight: c45 (2.07), then c12 (1.57), then c23
        // (0.57), then p6's best (0.23).
        let mut pps = fig3_pps(2);
        let first = pps.next().unwrap();
        assert_eq!(first.pair, Pair::new(pid(3), pid(4)), "c45 first");
        assert!((first.weight - (2.0 + 1.0 / 15.0)).abs() < 1e-9);
        let second = pps.next().unwrap();
        assert_eq!(second.pair, Pair::new(pid(0), pid(1)), "c12 second");
    }

    #[test]
    fn fig8b_sorted_profile_list_orders_duplicated_profiles_first() {
        // Fig. 8(b): the teachers (p4, p5) and the Carls (p1, p2) lead; the
        // non-duplicated p6 comes last.
        let pps = fig3_pps(2);
        let order = pps.sorted_profile_list();
        assert_eq!(order.len(), 6);
        assert_eq!(
            *order.last().unwrap(),
            pid(5),
            "p6 has the lowest likelihood"
        );
        // The top-4 are exactly the two duplicate groups' leaders.
        let top4: HashSet<ProfileId> = order[..4].iter().copied().collect();
        assert_eq!(top4, [pid(0), pid(1), pid(3), pid(4)].into_iter().collect());
    }

    #[test]
    fn fig8d_checked_entities_suppress_processed_neighbors() {
        // Drain the 4 init emissions, then the first scheduled profile's
        // batch must not pair it with an already-checked profile.
        let mut pps = fig3_pps(2);
        for _ in 0..4 {
            assert!(pps.next().is_some());
        }
        let first_scheduled = pps.sorted_profile_list()[0];
        // Next emission comes from the first scheduled profile; none of its
        // comparisons may involve itself as an already-checked partner —
        // and subsequent batches must never re-pair with checked entities.
        let mut checked: HashSet<ProfileId> = HashSet::new();
        checked.insert(first_scheduled);
        // Remaining emissions.
        let rest: Vec<Comparison> = pps.collect();
        // The pairs from later profiles never touch earlier-checked ones
        // (beyond the profile scheduling them).
        // Reconstruct scheduling: emissions come in batches per profile in
        // sorted order; verifying the global invariant: each pair contains
        // at least one endpoint that was unchecked when emitted is implicit;
        // here we check the weaker, deterministic property that no pair is
        // emitted twice after initialization.
        let mut seen = HashSet::new();
        for c in &rest {
            assert!(seen.insert(c.pair), "repeat after init: {c:?}");
        }
    }

    #[test]
    fn kmax_caps_per_profile_emissions() {
        let total_k1: usize = fig3_pps(1).count();
        let total_k5: usize = fig3_pps(5).count();
        assert!(total_k1 < total_k5);
    }

    #[test]
    fn early_emissions_are_matches() {
        let truth = fig3_ground_truth();
        let first3: Vec<Comparison> = fig3_pps(2).take(3).collect();
        let hits = first3
            .iter()
            .filter(|c| truth.is_match_pair(c.pair))
            .count();
        assert!(hits >= 2, "PPS should front-load matches: {first3:?}");
    }

    #[test]
    fn full_workflow_constructor() {
        let profiles = fig3_profiles();
        let pps = Pps::new(&profiles, WeightingScheme::Arcs);
        assert!(pps.count() > 0);
    }

    #[test]
    fn clean_clean_valid_pairs_only() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("t", "acme corp ltd")]);
        b.add_profile([("t", "zenith inc co")]);
        b.start_second_source();
        b.add_profile([("t", "acme corporation ltd")]);
        b.add_profile([("t", "zenith incorporated co")]);
        let coll = b.build();
        let pps = Pps::new(&coll, WeightingScheme::Arcs);
        for c in pps {
            assert!(coll.is_valid_comparison(c.pair.first, c.pair.second));
        }
    }

    #[test]
    fn empty_input_terminates() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let mut pps = Pps::new(&coll, WeightingScheme::Arcs);
        assert!(pps.next().is_none());
    }

    #[test]
    #[should_panic(expected = "kmax")]
    fn zero_kmax_panics() {
        fig3_pps(0);
    }

    #[test]
    fn duplication_likelihood_agrees_with_materialized_graph() {
        // The lazy accumulation must equal the BlockingGraph reference.
        use sper_blocking::BlockingGraph;
        let blocks = TokenBlocking::default().build(&fig3_profiles());
        let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        let pps = Pps::from_blocks(blocks, WeightingScheme::Arcs, 2);
        // Reconstruct likelihood order from the graph and compare.
        let mut expected: Vec<(ProfileId, f64)> = (0..6)
            .map(|i| (pid(i), graph.duplication_likelihood(pid(i))))
            .collect();
        expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        let expected_order: Vec<ProfileId> = expected.into_iter().map(|(p, _)| p).collect();
        assert_eq!(pps.sorted_profile_list(), expected_order.as_slice());
    }
}
