//! Resumable progressive-resolution sessions: `ingest → reprioritize →
//! emit` epochs over a continuously growing collection.
//!
//! A [`ProgressiveSession`] wraps any schema-agnostic progressive method.
//! Each epoch it rebuilds the method's priority state from the
//! *incrementally maintained* substrates ([`IncrementalTokenBlocking`] /
//! [`IncrementalNeighborList`]) — re-prioritization without
//! re-tokenization or index rebuilds — and emits best-first comparisons,
//! suppressing every pair already emitted in an earlier epoch.
//!
//! ## Eventual-quality guarantee
//!
//! The streaming counterpart of the paper's *Same Eventual Quality*
//! requirement (§3.1): once all profiles are ingested and the final epoch
//! is drained, the session's cumulative emission set equals the batch
//! method's emission set on the final collection — streaming changes
//! *latency*, never eventual quality. This holds exactly for
//! substrate-monotone configurations, i.e. when a comparison the method
//! emits on a prefix collection is still emitted on every extension:
//!
//! * the similarity-based methods run to exhaustion (SA-PSN, LS-PSN, and
//!   GS-PSN with `wmax ≥ |NL|`) — their eventual set is every valid pair
//!   of token-bearing profiles, which only grows under ingest;
//! * the equality-based methods (PBS, PPS) over *unpruned* token blocks
//!   with `kmax ≥ |P|` — their eventual set is the distinct block
//!   comparisons, and prefix blocks are subsets of final blocks.
//!
//! [`SessionConfig::exhaustive`] selects exactly this regime (it is the
//! configuration of the equivalence property test). With the paper's
//! pruned defaults (block purging/filtering, finite `kmax`/`wmax`) the
//! session still never emits a pair twice and still converges, but early
//! epochs may have emitted comparisons the final pruned batch run would
//! skip — pruning is not monotone under ingest.

use crate::incremental::{IncrementalNeighborList, IncrementalTokenBlocking};
use sper_blocking::{BlockFilter, BlockPurger};
use sper_core::{
    build_method, gs_psn::GsPsn, ls_psn::LsPsn, pbs::Pbs, pps::Pps, sa_psn::SaPsn, Comparison,
    MethodConfig, ProgressiveEr, ProgressiveMethod,
};
use sper_eval::{streaming_recall, StreamEpoch, StreamingRecall};
use sper_model::{Attribute, GroundTruth, Pair, ProfileCollection, ProfileId};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// When a session runs its periodic compaction pass (physically dropping
/// tombstoned rows from the incremental substrates — see
/// [`ProgressiveSession::compact`]).
///
/// Compaction is an optimization, never a correctness requirement: every
/// snapshot filters tombstones lazily, so emission is bit-identical
/// whether a compaction ran or not. The trigger only decides when to pay
/// the rebuild to reclaim memory and restore fast-path snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact at the start of an epoch once pending tombstones reach
    /// this fraction of the live collection. `0.0` compacts on any
    /// pending tombstone; an effectively-infinite ratio makes compaction
    /// manual-only ([`ProgressiveSession::compact`]).
    pub tombstone_ratio: f64,
}

impl CompactionPolicy {
    /// Compaction disabled — only explicit
    /// [`ProgressiveSession::compact`] calls rebuild.
    pub fn manual() -> Self {
        Self {
            tombstone_ratio: f64::INFINITY,
        }
    }

    /// Compact once `ratio` of the live collection is tombstoned.
    pub fn at_ratio(ratio: f64) -> Self {
        Self {
            tombstone_ratio: ratio,
        }
    }
}

impl Default for CompactionPolicy {
    /// Compact once a quarter of the live collection is tombstoned.
    fn default() -> Self {
        Self {
            tombstone_ratio: 0.25,
        }
    }
}

/// How a session builds and re-prioritizes its method.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The progressive method to run (PSN is rejected: schema keys do not
    /// stream).
    pub method: ProgressiveMethod,
    /// Shared method parameters (seed, weighting, workflow, `kmax`, …).
    pub config: MethodConfig,
    /// When retract/amend tombstones are physically compacted away.
    pub compaction: CompactionPolicy,
}

impl SessionConfig {
    /// The paper-default configuration for `method`.
    pub fn new(method: ProgressiveMethod) -> Self {
        Self {
            method,
            config: MethodConfig::default(),
            compaction: CompactionPolicy::default(),
        }
    }

    /// The substrate-monotone regime under which the streaming ⇔ batch
    /// equivalence is exact (see the module docs): no block purging or
    /// filtering, effectively unbounded `kmax` and `wmax`.
    pub fn exhaustive(method: ProgressiveMethod) -> Self {
        let mut config = MethodConfig::default();
        config.workflow.purge_ratio = 1.0;
        config.workflow.filter_ratio = 1.0;
        config.kmax = usize::MAX / 2;
        config.wmax = usize::MAX / 2;
        Self {
            method,
            config,
            compaction: CompactionPolicy::default(),
        }
    }

    /// Runs the epoch re-prioritization of the advanced methods (LS-PSN,
    /// GS-PSN, PBS, PPS) on `threads` worker threads; the naïve methods
    /// (SA-PSN, SA-PSAB) have no parallel phase and ignore the knob.
    /// Emission order (and therefore every recall curve) is identical to
    /// the sequential engine at any thread count.
    pub fn with_threads(mut self, threads: sper_core::Parallelism) -> Self {
        self.config.threads = threads;
        self
    }

    /// Replaces the compaction policy.
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }
}

/// The complete transferable state of a [`ProgressiveSession`] — what a
/// checkpoint must capture so a resumed session emits exactly the suffix
/// an uninterrupted run would have emitted.
///
/// Produced by [`ProgressiveSession::dehydrate`], consumed by
/// [`ProgressiveSession::rehydrate`]; the persistence layer (`sper-store`)
/// serializes this to the checkpoint file format. The substrate fields are
/// optional both because each method maintains only one of them and so the
/// compact "profiles-only" checkpoint stays expressible — rehydration
/// rebuilds any substrate the method needs but the state lacks, and
/// batching invariance makes the rebuilt substrate identical to the one a
/// never-interrupted session would hold.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The progressive method the session runs.
    pub method: ProgressiveMethod,
    /// Shared method parameters.
    pub config: MethodConfig,
    /// The full collection ingested so far.
    pub profiles: ProfileCollection,
    /// The live token-blocking substrate (PBS/PPS sessions).
    pub blocks: Option<IncrementalTokenBlocking>,
    /// The live Neighbor List substrate (SA-PSN/LS-PSN/GS-PSN sessions).
    pub nl: Option<IncrementalNeighborList>,
    /// Every pair emitted so far — the cross-epoch dedup filter — in
    /// ascending order.
    pub emitted: Vec<Pair>,
    /// Profiles ingested since the last epoch.
    pub pending_ingest: usize,
    /// Per-epoch reports so far (the emission cursor: `reports.len()`
    /// numbers the next epoch).
    pub reports: Vec<EpochReport>,
    /// The compaction policy in effect.
    pub compaction: CompactionPolicy,
    /// Every profile ever retracted (ascending). Ids are never recycled,
    /// so this only grows.
    pub retracted: Vec<ProfileId>,
    /// Retracted profiles whose rows are still physically present in the
    /// substrates (ascending, a subset of `retracted`) — the tombstones a
    /// future compaction will drop.
    pub pending_tombstones: Vec<ProfileId>,
}

/// Statistics of one `ingest → reprioritize → emit` epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Profiles streamed in since the previous epoch (the session's
    /// initial base collection is not counted).
    pub ingested: usize,
    /// Collection size at the end of the epoch.
    pub profiles_total: usize,
    /// Comparisons the method produced this epoch (including suppressed
    /// repeats).
    pub raw_emissions: u64,
    /// Comparisons emitted for the first time this epoch.
    pub new_emissions: u64,
    /// Comparisons suppressed as cross-epoch repeats.
    pub suppressed: u64,
    /// Time to rebuild the method from the incremental substrates.
    pub init_time: Duration,
    /// Time spent emitting.
    pub emission_time: Duration,
    /// Total wall-clock time of the epoch (re-prioritization + emission).
    ///
    /// Timing fields are **never persisted**: a checkpoint round-trip
    /// restores them as zero (they describe the machine the epoch ran on,
    /// not the session's resumable state).
    pub wall_clock: Duration,
    /// Raw comparisons produced per second of emission time (0 when the
    /// epoch emitted nothing or too fast to time).
    pub comparisons_per_sec: f64,
}

/// The outcome of one epoch: the report plus the newly emitted
/// comparisons, best-first in the method's epoch order.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Epoch statistics.
    pub report: EpochReport,
    /// The comparisons emitted for the first time this epoch.
    pub comparisons: Vec<Comparison>,
}

/// Whether `method` consumes the incremental token-blocking substrate.
/// Shared by [`ProgressiveSession::new`] and
/// [`ProgressiveSession::rehydrate`], which must agree or resumed
/// sessions would drop (or fail to rebuild) the method's substrate.
fn uses_blocks(method: ProgressiveMethod) -> bool {
    matches!(method, ProgressiveMethod::Pbs | ProgressiveMethod::Pps)
}

/// Whether `method` consumes the incremental Neighbor List substrate
/// (see [`uses_blocks`]).
fn uses_nl(method: ProgressiveMethod) -> bool {
    matches!(
        method,
        ProgressiveMethod::SaPsn | ProgressiveMethod::LsPsn | ProgressiveMethod::GsPsn
    )
}

/// A long-lived ingest-while-resolving session.
///
/// ```
/// use sper_core::ProgressiveMethod;
/// use sper_model::{Attribute, ProfileCollectionBuilder};
/// use sper_stream::{ProgressiveSession, SessionConfig};
///
/// let mut session = ProgressiveSession::new(
///     ProfileCollectionBuilder::dirty().build(),
///     SessionConfig::exhaustive(ProgressiveMethod::Pps),
/// );
/// session.ingest(vec![Attribute::new("name", "carl white ny tailor")]);
/// session.ingest(vec![Attribute::new("name", "karl white ny tailor")]);
/// let epoch = session.emit_epoch(None);
/// assert_eq!(epoch.report.new_emissions, 1, "the one valid pair");
/// // A later epoch never re-emits it.
/// assert_eq!(session.emit_epoch(None).report.new_emissions, 0);
/// ```
#[derive(Debug)]
pub struct ProgressiveSession {
    method: ProgressiveMethod,
    config: MethodConfig,
    profiles: ProfileCollection,
    blocks: Option<IncrementalTokenBlocking>,
    nl: Option<IncrementalNeighborList>,
    emitted: HashSet<Pair>,
    pending_ingest: usize,
    reports: Vec<EpochReport>,
    compaction: CompactionPolicy,
    /// Per-profile retraction marks, indexed by id (tracks
    /// `profiles.len()`).
    retracted: Vec<bool>,
    /// Count of `true` entries in `retracted`.
    n_retracted: usize,
    /// Retracted ids not yet compacted away, in retraction order
    /// (sorted when dehydrated — the set, not the order, is the state).
    pending: Vec<ProfileId>,
    /// When this process opened (or rehydrated) the session — the origin
    /// of the time-to-first-emission measure. Observational only, never
    /// persisted: a resumed session measures from the resume.
    t_origin: Instant,
    /// Microseconds from `t_origin` to the first emitted comparison of
    /// this process, once one exists.
    first_emission_us: Option<u64>,
}

impl ProgressiveSession {
    /// Opens a session over an initial collection (which may be empty —
    /// `ProfileCollectionBuilder::dirty().build()` — or a pre-loaded base;
    /// for Clean-clean tasks the base fixes `P1` and streamed profiles
    /// join `P2`).
    ///
    /// # Panics
    ///
    /// Panics for [`ProgressiveMethod::Psn`]: schema-based blocking keys
    /// are not available for streamed profiles.
    pub fn new(initial: ProfileCollection, session: SessionConfig) -> Self {
        assert!(
            !session.method.is_schema_based(),
            "PSN is schema-based; streaming sessions are schema-agnostic"
        );
        let SessionConfig {
            method,
            config,
            compaction,
        } = session;
        // Maintain only the substrate the method consumes; the fallback
        // methods (SA-PSAB's suffix forest) rebuild from the collection.
        let blocks =
            uses_blocks(method).then(|| IncrementalTokenBlocking::from_collection(&initial));
        let nl = uses_nl(method)
            .then(|| IncrementalNeighborList::from_collection(&initial, config.seed));
        let retracted = vec![false; initial.len()];
        Self {
            method,
            config,
            profiles: initial,
            blocks,
            nl,
            emitted: HashSet::new(),
            // The base collection is not "streamed in": ingest counters
            // (and throughput derived from them) start at zero.
            pending_ingest: 0,
            reports: Vec::new(),
            compaction,
            retracted,
            n_retracted: 0,
            pending: Vec::new(),
            t_origin: Instant::now(),
            first_emission_us: None,
        }
    }

    /// The method this session runs.
    pub fn method(&self) -> ProgressiveMethod {
        self.method
    }

    /// The session's configuration (method + parameters) — the
    /// save-side half of the checkpoint hooks.
    pub fn config(&self) -> SessionConfig {
        SessionConfig {
            method: self.method,
            config: self.config.clone(),
            compaction: self.compaction,
        }
    }

    /// Extracts the session's complete transferable state — the save hook
    /// of the checkpoint/resume cycle (see [`SessionState`]).
    pub fn dehydrate(&self) -> SessionState {
        let mut emitted: Vec<Pair> = self.emitted.iter().copied().collect();
        emitted.sort_unstable();
        // Tombstone state canonicalizes to sorted id lists: checkpoint
        // bytes must not depend on retraction order.
        let retracted: Vec<ProfileId> = self
            .retracted
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(i, _)| ProfileId(i as u32))
            .collect();
        let mut pending_tombstones = self.pending.clone();
        pending_tombstones.sort_unstable();
        SessionState {
            method: self.method,
            config: self.config.clone(),
            profiles: self.profiles.clone(),
            blocks: self.blocks.clone(),
            nl: self.nl.clone(),
            emitted,
            pending_ingest: self.pending_ingest,
            reports: self.reports.clone(),
            compaction: self.compaction,
            retracted,
            pending_tombstones,
        }
    }

    /// Reconstructs a session from a [`SessionState`] — the restore hook
    /// of the checkpoint/resume cycle.
    ///
    /// Every epoch the restored session emits is **bit-identical** to
    /// what the uninterrupted session would have emitted: the substrates
    /// round-trip exactly (or are rebuilt from the collection, which
    /// batching invariance makes equivalent), and the emitted-pair filter
    /// is order-insensitive.
    ///
    /// # Panics
    ///
    /// Panics for [`ProgressiveMethod::Psn`] states, like
    /// [`ProgressiveSession::new`].
    pub fn rehydrate(state: SessionState) -> Self {
        assert!(
            !state.method.is_schema_based(),
            "PSN is schema-based; streaming sessions are schema-agnostic"
        );
        let SessionState {
            method,
            config,
            profiles,
            mut blocks,
            mut nl,
            emitted,
            pending_ingest,
            reports,
            compaction,
            retracted,
            pending_tombstones,
        } = state;
        let mut dead = vec![false; profiles.len()];
        for &id in &retracted {
            assert!(
                (id.index()) < profiles.len(),
                "retracted id out of range: {id:?}"
            );
            dead[id.index()] = true;
        }
        for &id in &pending_tombstones {
            assert!(dead[id.index()], "pending tombstone was never retracted");
        }
        // Rebuild whichever substrate the method consumes but the state
        // lacks; drop any the method does not use. A substrate rebuilt
        // from the husked collection is *already compacted* — retracted
        // profiles tokenize to nothing — so it carries the all-time
        // tombstone marks but zero physically-pending rows. Lazy snapshot
        // filtering makes it emit identically to a carried-over substrate
        // that still holds the dead rows.
        if !uses_blocks(method) {
            blocks = None;
        } else if blocks.is_none() {
            let mut b = IncrementalTokenBlocking::from_collection(&profiles);
            b.restore_tombstones(retracted.iter().copied(), 0);
            blocks = Some(b);
        }
        if !uses_nl(method) {
            nl = None;
        } else if nl.is_none() {
            let mut n = IncrementalNeighborList::from_collection(&profiles, config.seed);
            n.restore_tombstones(retracted.iter().copied(), 0);
            nl = Some(n);
        }
        let n_retracted = retracted.len();
        Self {
            method,
            config,
            profiles,
            blocks,
            nl,
            emitted: emitted.into_iter().collect(),
            pending_ingest,
            reports,
            compaction,
            retracted: dead,
            n_retracted,
            pending: pending_tombstones,
            t_origin: Instant::now(),
            first_emission_us: None,
        }
    }

    /// The current collection.
    pub fn profiles(&self) -> &ProfileCollection {
        &self.profiles
    }

    /// Microseconds from session open (or resume) to the first comparison
    /// this process emitted; `None` until one exists. Time-to-first-result
    /// is the paper's headline progressive measure, so the session tracks
    /// it directly (also exported as the `session.first_emission_us`
    /// gauge).
    pub fn first_emission_us(&self) -> Option<u64> {
        self.first_emission_us
    }

    /// Pairs emitted so far, across all epochs.
    pub fn emitted(&self) -> &HashSet<Pair> {
        &self.emitted
    }

    /// Per-epoch reports so far.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Ingests one profile, updating the incremental substrates. Cost is
    /// amortized `O(|tokens| · log)` — no existing profile is touched.
    pub fn ingest(&mut self, attributes: Vec<Attribute>) -> ProfileId {
        let id = self.profiles.append_profile(attributes);
        let profile = self.profiles.get(id);
        if let Some(blocks) = self.blocks.as_mut() {
            blocks.add_profile(profile);
        }
        if let Some(nl) = self.nl.as_mut() {
            nl.add_profile(profile);
        }
        self.retracted.push(false);
        self.pending_ingest += 1;
        id
    }

    /// Ingests a batch of profiles, returning the id range.
    pub fn ingest_batch(
        &mut self,
        batch: impl IntoIterator<Item = Vec<Attribute>>,
    ) -> std::ops::Range<u32> {
        let mut span = sper_obs::span!("stream.ingest");
        let start = self.profiles.len() as u32;
        for attrs in batch {
            self.ingest(attrs);
        }
        span.record("rows", (self.profiles.len() as u32 - start) as u64);
        span.record("profiles_total", self.profiles.len());
        start..self.profiles.len() as u32
    }

    /// Retracts (deletes) a previously ingested profile.
    ///
    /// The id is *never recycled*: the collection keeps an empty husk in
    /// the slot (so every other id stays stable) and the incremental
    /// substrates mark the profile tombstoned. Snapshots filter
    /// tombstones lazily, so from this call on the session emits exactly
    /// what a session that never saw the profile would emit — the
    /// physical rows are dropped later by [`compact`](Self::compact).
    /// Cross-epoch dedup entries touching the profile are invalidated
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never ingested or is already retracted.
    pub fn retract(&mut self, id: ProfileId) {
        assert!(id.index() < self.profiles.len(), "retract of unknown {id}");
        assert!(!self.retracted[id.index()], "double retract of {id}");
        self.retracted[id.index()] = true;
        self.n_retracted += 1;
        self.profiles.retract_profile(id);
        if let Some(blocks) = self.blocks.as_mut() {
            blocks.retract(id);
        }
        if let Some(nl) = self.nl.as_mut() {
            nl.retract(id);
        }
        self.pending.push(id);
        // Invalidate dedup-filter entries touching the retracted profile.
        // Ids never recycle, so these pairs could never be re-emitted
        // anyway — dropping them keeps the checkpoint's emitted section
        // identical to a session that never saw the profile.
        let retracted = &self.retracted;
        self.emitted
            .retain(|p| !retracted[p.first.index()] && !retracted[p.second.index()]);
        sper_obs::count!("session.retracts");
        sper_obs::gauge!("session.tombstones_pending", self.pending.len() as i64);
    }

    /// Updates a profile by retract + re-ingest: the old id becomes a
    /// tombstone and the new attribute set receives a **fresh id** (ids
    /// are immutable handles to an ingested row, never edited in place).
    /// This makes *update ≡ delete + insert* hold by construction — the
    /// equivalence the mutation test wall pins down.
    ///
    /// For Clean-clean sessions the re-ingested profile joins the
    /// streamed source (`P2`), like any other ingest.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never ingested or is already retracted.
    pub fn amend(&mut self, id: ProfileId, attributes: Vec<Attribute>) -> ProfileId {
        self.retract(id);
        let new_id = self.ingest(attributes);
        sper_obs::count!("session.amends");
        new_id
    }

    /// Whether a profile has been retracted (directly or via
    /// [`amend`](Self::amend)).
    pub fn is_retracted(&self, id: ProfileId) -> bool {
        self.retracted[id.index()]
    }

    /// Retracted ids whose rows are still physically present in the
    /// substrates.
    pub fn pending_tombstones(&self) -> usize {
        self.pending.len()
    }

    /// Physically drops tombstoned rows from the incremental substrates,
    /// rebuilding the affected CSR segments. Emission is bit-identical
    /// before and after (snapshots already filter lazily); compaction
    /// reclaims memory and restores the fast snapshot path. Returns the
    /// number of tombstones compacted away.
    ///
    /// Runs automatically at the start of an epoch once the
    /// [`CompactionPolicy`] threshold is reached; calling it manually is
    /// always safe.
    pub fn compact(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let mut span = sper_obs::span!("stream.compaction", pending = self.pending.len());
        let mut dropped = 0usize;
        if let Some(blocks) = self.blocks.as_mut() {
            dropped = dropped.max(blocks.compact());
        }
        if let Some(nl) = self.nl.as_mut() {
            dropped = dropped.max(nl.compact());
        }
        // Substrate-free methods (SA-PSAB) rebuild from the husked
        // collection each epoch; their tombstones are "compacted" the
        // moment they are retracted.
        dropped = dropped.max(self.pending.len());
        self.pending.clear();
        span.record("dropped", dropped as u64);
        sper_obs::count!("session.compactions");
        sper_obs::gauge!("session.tombstones_pending", 0);
        dropped
    }

    /// The epoch-start compaction trigger (see [`CompactionPolicy`]).
    fn should_compact(&self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let live = (self.profiles.len() - self.n_retracted).max(1);
        self.pending.len() as f64 >= self.compaction.tombstone_ratio * live as f64
    }

    /// Runs one epoch: rebuilds the method's priority state from the
    /// incremental substrates (re-prioritization) and emits best-first
    /// comparisons, suppressing cross-epoch repeats, until the method is
    /// exhausted or `budget` *new* emissions have been produced.
    pub fn emit_epoch(&mut self, budget: Option<u64>) -> EpochOutcome {
        // Fault-harness entry: `delay`/`panic` schedules simulate a slow
        // or killed epoch (epochs return no Result, so error actions
        // don't apply here — see `sper_obs::fault::apply`).
        sper_obs::fault::apply("session.epoch");
        let budget = budget.unwrap_or(u64::MAX);
        // Periodic compaction runs at epoch boundaries, before the
        // snapshot: it never changes what this epoch emits (lazy
        // filtering already hides tombstones), only how fast the
        // snapshot is taken.
        if self.should_compact() {
            self.compact();
        }
        let mut span = sper_obs::span!(
            "stream.epoch",
            epoch = self.reports.len() + 1,
            method = self.method.name(),
            ingested = self.pending_ingest,
        );
        let t0 = Instant::now();
        // Snapshot the substrates first (they need `&mut self`), then
        // build the epoch method over `&self.profiles`.
        let (nl_snapshot, block_snapshot) = {
            let mut snap_span = sper_obs::span!("blocking.epoch_snapshot");
            let nl_snapshot = self.nl.as_mut().map(|nl| nl.snapshot());
            let block_snapshot = self.blocks.as_ref().map(|b| {
                let snap = b.snapshot();
                let snap = BlockPurger::new(self.config.workflow.purge_ratio).purge(snap);
                BlockFilter::new(self.config.workflow.filter_ratio).filter(snap)
            });
            if let Some(blocks) = &block_snapshot {
                snap_span.record("blocks", blocks.len());
            }
            (nl_snapshot, block_snapshot)
        };
        // Epoch re-prioritization runs on the configured worker threads
        // (`MethodConfig::threads`); the emitted sequence is identical to
        // the sequential engine at any thread count.
        let par = self.config.threads;
        let init_span = sper_obs::span!(
            "core.method_init",
            method = self.method.name(),
            threads = par.get(),
        );
        let mut method: Box<dyn ProgressiveEr + '_> = match self.method {
            ProgressiveMethod::SaPsn => {
                let mut m = SaPsn::from_neighbor_list(&self.profiles, nl_snapshot.unwrap());
                if let Some(mw) = self.config.max_window {
                    m = m.with_max_window(mw);
                }
                Box::new(m)
            }
            ProgressiveMethod::LsPsn => Box::new(LsPsn::from_neighbor_list_par(
                &self.profiles,
                nl_snapshot.unwrap(),
                self.config.neighbor_weighting,
                par,
            )),
            ProgressiveMethod::GsPsn => Box::new(GsPsn::from_neighbor_list_par(
                &self.profiles,
                nl_snapshot.unwrap(),
                self.config.wmax,
                self.config.neighbor_weighting,
                par,
            )),
            ProgressiveMethod::Pbs => Box::new(Pbs::from_blocks_par(
                block_snapshot.unwrap(),
                self.config.scheme,
                par,
            )),
            ProgressiveMethod::Pps => Box::new(Pps::from_blocks_par(
                block_snapshot.unwrap(),
                self.config.scheme,
                self.config.kmax,
                par,
            )),
            // No incremental substrate for the suffix forest (SA-PSAB):
            // full rebuild per epoch.
            other => build_method(other, &self.profiles, &self.config, None),
        };
        drop(init_span);
        let init_time = t0.elapsed();

        let t1 = Instant::now();
        let mut emit_span = sper_obs::span!("stream.emit");
        let mut raw: u64 = 0;
        let mut suppressed: u64 = 0;
        let mut comparisons: Vec<Comparison> = Vec::new();
        while (comparisons.len() as u64) < budget {
            let Some(c) = method.next() else { break };
            raw += 1;
            // Substrate snapshots already filter tombstones; this guard
            // covers the substrate-free methods (SA-PSAB rebuilds from
            // the husked collection, whose empty rows can never pair, so
            // it is ordinarily inert) and is the last line of defense
            // for the headline invariant: a retracted profile is never
            // emitted.
            if self.retracted[c.pair.first.index()] || self.retracted[c.pair.second.index()] {
                suppressed += 1;
                continue;
            }
            if self.emitted.insert(c.pair) {
                comparisons.push(c);
            } else {
                suppressed += 1;
            }
        }
        drop(method);
        emit_span.record("raw", raw);
        emit_span.record("new", comparisons.len());
        drop(emit_span);
        let emission_time = t1.elapsed();
        let wall_clock = t0.elapsed();

        // Epoch counters feed the global metrics registry (the source of
        // the Prometheus/JSON dumps); the derived throughput rides on the
        // report itself. Both are observational only — never persisted.
        sper_obs::count!("session.epochs");
        sper_obs::count!("session.raw_emissions", raw);
        sper_obs::count!("session.new_emissions", comparisons.len() as u64);
        sper_obs::count!("session.suppressed", suppressed);
        sper_obs::observe!("session.epoch_init_us", init_time.as_secs_f64() * 1e6);
        sper_obs::observe!("session.epoch_emit_us", emission_time.as_secs_f64() * 1e6);
        // Progress gauges: the live-scrape view of "where is this
        // session right now" (epoch counters above only ever accumulate).
        if self.first_emission_us.is_none() && !comparisons.is_empty() {
            let us = u64::try_from(self.t_origin.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.first_emission_us = Some(us);
            sper_obs::gauge!("session.first_emission_us", us as i64);
        }
        sper_obs::gauge!("session.epoch", self.reports.len() as i64 + 1);
        sper_obs::gauge!("session.emitted_total", self.emitted.len() as i64);
        sper_obs::gauge!("session.profiles", self.profiles.len() as i64);
        let live = (self.profiles.len() - self.n_retracted).max(1);
        sper_obs::gauge!(
            "session.tombstone_permille",
            (self.pending.len() as f64 / live as f64 * 1000.0) as i64
        );
        let comparisons_per_sec = if emission_time.as_secs_f64() > 0.0 {
            raw as f64 / emission_time.as_secs_f64()
        } else {
            0.0
        };

        let report = EpochReport {
            epoch: self.reports.len() + 1,
            ingested: std::mem::take(&mut self.pending_ingest),
            profiles_total: self.profiles.len(),
            raw_emissions: raw,
            new_emissions: comparisons.len() as u64,
            suppressed,
            init_time,
            emission_time,
            wall_clock,
            comparisons_per_sec,
        };
        span.record("raw", raw);
        span.record("new", report.new_emissions);
        span.record("suppressed", suppressed);
        self.reports.push(report.clone());
        EpochOutcome {
            report,
            comparisons,
        }
    }
}

/// Drives a full streaming run: ingest `batches` one epoch at a time
/// (emitting up to `budget_per_epoch` new comparisons after each), then
/// evaluates the cumulative emissions against `truth` as an
/// epoch-annotated recall curve.
pub fn run_streaming(
    initial: ProfileCollection,
    batches: Vec<Vec<Vec<Attribute>>>,
    session_config: SessionConfig,
    budget_per_epoch: Option<u64>,
    truth: &GroundTruth,
) -> (StreamingRecall, Vec<EpochReport>) {
    let (recall, reports) = run_streaming_with(
        initial,
        batches,
        session_config,
        budget_per_epoch,
        Some(truth),
        |_| {},
    );
    (recall.expect("truth was provided"), reports)
}

/// [`run_streaming`] with its knobs exposed: the ground truth is optional
/// (no truth → no recall curve, epochs still run) and `on_epoch` observes
/// every [`EpochOutcome`] as it completes — live progress reporting for
/// long runs (the `sper stream` CLI).
pub fn run_streaming_with(
    initial: ProfileCollection,
    batches: Vec<Vec<Vec<Attribute>>>,
    session_config: SessionConfig,
    budget_per_epoch: Option<u64>,
    truth: Option<&GroundTruth>,
    mut on_epoch: impl FnMut(&EpochOutcome),
) -> (Option<StreamingRecall>, Vec<EpochReport>) {
    let mut session = ProgressiveSession::new(initial, session_config);
    let mut epochs: Vec<StreamEpoch> = Vec::new();
    for batch in batches {
        session.ingest_batch(batch);
        let outcome = session.emit_epoch(budget_per_epoch);
        epochs.push(StreamEpoch {
            profiles_total: outcome.report.profiles_total,
            pairs: outcome.comparisons.iter().map(|c| c.pair).collect(),
        });
        on_epoch(&outcome);
    }
    let recall = truth.map(|t| streaming_recall(&epochs, t));
    (recall, session.reports.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;

    fn toy() -> Vec<Vec<Attribute>> {
        [
            "carl white ny tailor",
            "karl white ny tailor",
            "hellen white ml teacher",
            "ellen white ml teacher",
            "emma white wi tailor",
            "frank black la baker",
        ]
        .iter()
        .map(|v| vec![Attribute::new("text", *v)])
        .collect()
    }

    fn empty_dirty() -> ProfileCollection {
        ProfileCollectionBuilder::dirty().build()
    }

    #[test]
    fn epochs_never_repeat_emissions() {
        for method in [
            ProgressiveMethod::SaPsn,
            ProgressiveMethod::LsPsn,
            ProgressiveMethod::GsPsn,
            ProgressiveMethod::Pbs,
            ProgressiveMethod::Pps,
            ProgressiveMethod::SaPsab,
        ] {
            let mut session =
                ProgressiveSession::new(empty_dirty(), SessionConfig::exhaustive(method));
            let mut seen: HashSet<Pair> = HashSet::new();
            for chunk in toy().chunks(2) {
                session.ingest_batch(chunk.to_vec());
                let outcome = session.emit_epoch(None);
                for c in &outcome.comparisons {
                    assert!(seen.insert(c.pair), "{method:?} repeated {:?}", c.pair);
                }
            }
            assert_eq!(seen.len(), session.emitted().len());
        }
    }

    #[test]
    fn budget_limits_new_emissions_per_epoch() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
        );
        session.ingest_batch(toy());
        let outcome = session.emit_epoch(Some(3));
        assert_eq!(outcome.report.new_emissions, 3);
        assert_eq!(outcome.comparisons.len(), 3);
        // The rest arrives in the next epoch, without repeats.
        let rest = session.emit_epoch(None);
        assert!(rest.report.new_emissions > 0);
        assert_eq!(rest.report.ingested, 0, "no new profiles this epoch");
    }

    #[test]
    fn reports_track_ingest_and_epochs() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::LsPsn),
        );
        let ids = session.ingest_batch(toy().into_iter().take(4));
        assert_eq!(ids, 0..4);
        let o1 = session.emit_epoch(None);
        assert_eq!(o1.report.epoch, 1);
        assert_eq!(o1.report.ingested, 4);
        assert_eq!(o1.report.profiles_total, 4);
        session.ingest_batch(toy().into_iter().skip(4));
        let o2 = session.emit_epoch(None);
        assert_eq!(o2.report.epoch, 2);
        assert_eq!(o2.report.ingested, 2);
        assert_eq!(o2.report.profiles_total, 6);
        assert_eq!(session.reports().len(), 2);
    }

    #[test]
    fn empty_epoch_is_harmless() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pbs),
        );
        let outcome = session.emit_epoch(None);
        assert_eq!(outcome.report.new_emissions, 0);
        assert_eq!(outcome.comparisons.len(), 0);
    }

    #[test]
    #[should_panic(expected = "schema-based")]
    fn psn_is_rejected() {
        ProgressiveSession::new(empty_dirty(), SessionConfig::new(ProgressiveMethod::Psn));
    }

    #[test]
    fn parallel_epochs_emit_identical_sequences() {
        // Every epoch's emission sequence (pairs *and* weights, in order)
        // must be independent of the thread count.
        for method in [
            ProgressiveMethod::LsPsn,
            ProgressiveMethod::GsPsn,
            ProgressiveMethod::Pbs,
            ProgressiveMethod::Pps,
        ] {
            let run = |threads: usize| {
                let config = SessionConfig::exhaustive(method)
                    .with_threads(sper_core::Parallelism::new(threads).unwrap());
                let mut session = ProgressiveSession::new(empty_dirty(), config);
                let mut emissions: Vec<Vec<(Pair, f64)>> = Vec::new();
                for chunk in toy().chunks(2) {
                    session.ingest_batch(chunk.to_vec());
                    let outcome = session.emit_epoch(None);
                    emissions.push(
                        outcome
                            .comparisons
                            .iter()
                            .map(|c| (c.pair, c.weight))
                            .collect(),
                    );
                }
                emissions
            };
            let sequential = run(1);
            for threads in [2, 4] {
                assert_eq!(
                    run(threads),
                    sequential,
                    "{method:?} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn rehydrated_session_emits_identical_suffix() {
        // Checkpoint after epoch 1; the resumed session's remaining epochs
        // must match the uninterrupted session's bit for bit.
        for method in [
            ProgressiveMethod::SaPsn,
            ProgressiveMethod::LsPsn,
            ProgressiveMethod::GsPsn,
            ProgressiveMethod::Pbs,
            ProgressiveMethod::Pps,
            ProgressiveMethod::SaPsab,
        ] {
            let chunks: Vec<Vec<Vec<Attribute>>> = toy().chunks(2).map(|c| c.to_vec()).collect();
            let mut baseline =
                ProgressiveSession::new(empty_dirty(), SessionConfig::exhaustive(method));
            baseline.ingest_batch(chunks[0].clone());
            let first = baseline.emit_epoch(Some(2));
            let state = baseline.dehydrate();
            let mut resumed = ProgressiveSession::rehydrate(state);
            assert_eq!(resumed.emitted().len(), first.comparisons.len());
            for chunk in &chunks[1..] {
                baseline.ingest_batch(chunk.clone());
                resumed.ingest_batch(chunk.clone());
                let a = baseline.emit_epoch(Some(3));
                let b = resumed.emit_epoch(Some(3));
                let pairs = |o: &EpochOutcome| -> Vec<(Pair, f64)> {
                    o.comparisons.iter().map(|c| (c.pair, c.weight)).collect()
                };
                assert_eq!(pairs(&a), pairs(&b), "{method:?} diverged after resume");
                assert_eq!(a.report.epoch, b.report.epoch);
            }
        }
    }

    #[test]
    fn rehydrate_rebuilds_missing_substrates() {
        // A profiles-only state (substrates dropped) must rebuild to the
        // exact substrate an uninterrupted session holds — batching
        // invariance makes the two indistinguishable.
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
        );
        session.ingest_batch(toy().into_iter().take(4));
        let full = session.emit_epoch(Some(1));
        let mut state = session.dehydrate();
        state.blocks = None;
        state.nl = None;
        let mut resumed = ProgressiveSession::rehydrate(state);
        let a = session.emit_epoch(None);
        let b = resumed.emit_epoch(None);
        assert_eq!(
            a.comparisons.iter().map(|c| c.pair).collect::<Vec<_>>(),
            b.comparisons.iter().map(|c| c.pair).collect::<Vec<_>>(),
        );
        assert!(full.report.new_emissions > 0);
    }

    fn emission_of(o: &EpochOutcome) -> Vec<(Pair, f64)> {
        o.comparisons.iter().map(|c| (c.pair, c.weight)).collect()
    }

    #[test]
    fn retract_before_emission_equals_never_ingested() {
        // Ingest toy() plus a trailing junk profile, retract the junk
        // before any emission: every epoch must be bit-identical to a
        // session that never saw it (survivor ids coincide because the
        // junk profile holds the last id).
        for method in [
            ProgressiveMethod::SaPsn,
            ProgressiveMethod::LsPsn,
            ProgressiveMethod::GsPsn,
            ProgressiveMethod::Pbs,
            ProgressiveMethod::Pps,
            ProgressiveMethod::SaPsab,
        ] {
            let mut mutated =
                ProgressiveSession::new(empty_dirty(), SessionConfig::exhaustive(method));
            mutated.ingest_batch(toy());
            let junk = mutated.ingest(vec![Attribute::new("text", "carl white zz tailor")]);
            mutated.retract(junk);
            let mut clean =
                ProgressiveSession::new(empty_dirty(), SessionConfig::exhaustive(method));
            clean.ingest_batch(toy());
            let a = mutated.emit_epoch(None);
            let b = clean.emit_epoch(None);
            assert_eq!(emission_of(&a), emission_of(&b), "{method:?} diverged");
            assert!(b.report.new_emissions > 0, "vacuous fixture");
        }
    }

    #[test]
    fn amend_retracts_and_assigns_a_fresh_id() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
        );
        session.ingest_batch(toy());
        let new_id = session.amend(ProfileId(0), vec![Attribute::new("text", "carla white")]);
        assert_eq!(new_id, ProfileId(6), "amend re-ingests under a fresh id");
        assert!(session.is_retracted(ProfileId(0)));
        assert!(!session.is_retracted(new_id));
        let outcome = session.emit_epoch(None);
        for c in &outcome.comparisons {
            assert_ne!(c.pair.first, ProfileId(0), "retracted id emitted");
            assert_ne!(c.pair.second, ProfileId(0), "retracted id emitted");
        }
    }

    #[test]
    fn compaction_never_changes_the_emission_stream() {
        // Fork one mid-stream state (via dehydrate) into a session that
        // compacts eagerly and one that never compacts; their remaining
        // epochs must match bit for bit.
        for method in [ProgressiveMethod::Pps, ProgressiveMethod::SaPsn] {
            let mut base =
                ProgressiveSession::new(empty_dirty(), SessionConfig::exhaustive(method));
            base.ingest_batch(toy());
            base.emit_epoch(Some(2));
            base.retract(ProfileId(4));
            base.retract(ProfileId(5));
            let state = base.dehydrate();
            let mut eager = ProgressiveSession::rehydrate(state.clone());
            let mut lazy = ProgressiveSession::rehydrate(state);
            assert_eq!(eager.pending_tombstones(), 2);
            assert!(eager.compact() >= 2);
            assert_eq!(eager.pending_tombstones(), 0);
            for extra in ["gina white ny tailor", "paul black la baker"] {
                let attrs = vec![Attribute::new("text", extra)];
                eager.ingest(attrs.clone());
                lazy.ingest(attrs);
                let a = eager.emit_epoch(Some(3));
                let b = lazy.emit_epoch(Some(3));
                assert_eq!(emission_of(&a), emission_of(&b), "{method:?} diverged");
            }
        }
    }

    #[test]
    fn retract_invalidates_dedup_filter_entries() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
        );
        session.ingest_batch(toy());
        session.emit_epoch(None);
        let touching_0 = session
            .emitted()
            .iter()
            .filter(|p| p.first == ProfileId(0) || p.second == ProfileId(0))
            .count();
        assert!(touching_0 > 0, "vacuous fixture");
        let before = session.emitted().len();
        session.retract(ProfileId(0));
        assert_eq!(session.emitted().len(), before - touching_0);
        assert!(session
            .emitted()
            .iter()
            .all(|p| p.first != ProfileId(0) && p.second != ProfileId(0)));
    }

    #[test]
    fn compaction_policy_gates_the_epoch_trigger() {
        // ratio 0.0 compacts on any pending tombstone at the epoch
        // boundary; manual() never does.
        let auto = SessionConfig::exhaustive(ProgressiveMethod::Pps)
            .with_compaction(CompactionPolicy::at_ratio(0.0));
        let mut session = ProgressiveSession::new(empty_dirty(), auto);
        session.ingest_batch(toy());
        session.retract(ProfileId(5));
        assert_eq!(session.pending_tombstones(), 1);
        session.emit_epoch(None);
        assert_eq!(session.pending_tombstones(), 0, "epoch start compacts");

        let manual = SessionConfig::exhaustive(ProgressiveMethod::Pps)
            .with_compaction(CompactionPolicy::manual());
        let mut session = ProgressiveSession::new(empty_dirty(), manual);
        session.ingest_batch(toy());
        session.retract(ProfileId(5));
        session.emit_epoch(None);
        assert_eq!(session.pending_tombstones(), 1, "manual policy never fires");
    }

    #[test]
    #[should_panic(expected = "double retract")]
    fn session_double_retract_panics() {
        let mut session = ProgressiveSession::new(
            empty_dirty(),
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
        );
        session.ingest_batch(toy());
        session.retract(ProfileId(1));
        session.retract(ProfileId(1));
    }

    #[test]
    fn run_streaming_produces_epoch_marks() {
        let profiles = toy();
        let truth = GroundTruth::from_pairs(
            6,
            [
                Pair::new(ProfileId(0), ProfileId(1)),
                Pair::new(ProfileId(2), ProfileId(3)),
            ],
        );
        let batches: Vec<Vec<Vec<Attribute>>> = profiles.chunks(2).map(|c| c.to_vec()).collect();
        let (recall, reports) = run_streaming(
            empty_dirty(),
            batches,
            SessionConfig::exhaustive(ProgressiveMethod::Pps),
            None,
            &truth,
        );
        assert_eq!(recall.epochs.len(), 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(recall.final_recall(), 1.0, "exhaustive drain finds all");
        // Matches among early-ingested profiles surface in early epochs.
        assert!(recall.recall_after_epoch(1) >= 0.5);
    }
}
