#![deny(missing_docs)]
//! # sper-stream
//!
//! Incremental **ingest-while-resolving** sessions: the long-lived service
//! primitive that turns the one-shot [`ProgressiveEr`] iterators of
//! `sper-core` into a streaming pipeline.
//!
//! Every batch method in this workspace freezes its `ProfileCollection` at
//! construction. This crate removes that constraint with three layers:
//!
//! 1. **Incremental substrates** ([`incremental`]) —
//!    [`IncrementalTokenBlocking`] and [`IncrementalNeighborList`] keep the
//!    blocking indexes of `sper-blocking` up to date under `add_profile` /
//!    `add_batch`, with amortized per-profile updates instead of full
//!    rebuilds, and materialize batch-identical snapshots on demand.
//!    Deletion is tombstone-based: `retract` marks a row, snapshots
//!    filter it lazily, and a periodic `compact` pass physically drops
//!    the dead rows — emission is bit-identical throughout.
//! 2. **Resumable sessions** ([`session`]) — a [`ProgressiveSession`]
//!    wraps any schema-agnostic method and runs `ingest → reprioritize →
//!    emit` epochs, deduplicating emissions across epochs and reporting
//!    per-epoch statistics.
//! 3. **Harness integration** — the `sper stream` CLI subcommand, the
//!    [`sper_eval::streaming`] epoch-annotated recall curves (driven by
//!    [`run_streaming`]), criterion ingest/re-emission benches, and the
//!    `streaming_ingest` example.
//!
//! The core invariant (property-tested in `tests/equivalence.rs`) mirrors
//! the paper's *Same Eventual Quality* requirement (§3.1): after all
//! profiles are ingested, a session's cumulative emission set equals the
//! batch method's emission set on the final collection — streaming changes
//! latency, never eventual quality. See [`session`] for the exact
//! monotonicity conditions.
//!
//! ```
//! use sper_stream::{ProgressiveSession, SessionConfig};
//! use sper_core::ProgressiveMethod;
//! use sper_model::{Attribute, ProfileCollectionBuilder};
//!
//! let mut session = ProgressiveSession::new(
//!     ProfileCollectionBuilder::dirty().build(),
//!     SessionConfig::exhaustive(ProgressiveMethod::Pps),
//! );
//! session.ingest(vec![Attribute::new("name", "Carl White NY tailor")]);
//! session.ingest(vec![Attribute::new("name", "Karl White NY tailor")]);
//! let epoch = session.emit_epoch(None);
//! assert_eq!(epoch.report.new_emissions, 1);
//! ```
//!
//! [`ProgressiveEr`]: sper_core::ProgressiveEr

pub mod incremental;
pub mod session;

pub use incremental::{IncrementalNeighborList, IncrementalTokenBlocking};
pub use session::{
    run_streaming, run_streaming_with, CompactionPolicy, EpochOutcome, EpochReport,
    ProgressiveSession, SessionConfig, SessionState,
};
