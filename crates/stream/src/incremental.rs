//! Incremental blocking substrates: the batch indexes of `sper-blocking`
//! (Token Blocking's block collection, the Profile Index, the Neighbor
//! List) rebuilt as *updatable* structures supporting `add_profile` /
//! `add_batch` with amortized index updates instead of full
//! re-tokenization and re-sorting per epoch.
//!
//! Both substrates guarantee **batching invariance**: the state after
//! ingesting a collection is a pure function of the final profile set,
//! independent of how the ingest was split into batches (property-tested
//! below). This is what makes the `ProgressiveSession` equivalence to the
//! batch methods possible at all.
//!
//! Since PR 8 both substrates also carry the **mutation model**: a
//! tombstone set marks retracted profiles, read paths ([`snapshot`]s)
//! filter tombstoned members lazily, and an explicit [`compact`] pass
//! physically drops them and rebuilds the affected index segments. The
//! headline invariant (property-tested in `tests/mutation_equivalence.rs`)
//! is that a snapshot taken with tombstones — before *or* after
//! compaction — equals the snapshot of a substrate that never ingested
//! the retracted profiles, modulo the monotone survivor-id bijection.
//! Ids are never renumbered or recycled: a retracted profile keeps its
//! dense id forever as an empty husk.
//!
//! [`snapshot`]: IncrementalTokenBlocking::snapshot
//! [`compact`]: IncrementalTokenBlocking::compact
//!
//! Both share one append-only [`TokenInterner`] *across epochs*: a token
//! seen in epoch 1 keeps its [`TokenId`] forever, so per-epoch work is
//! `u32`-keyed throughout and snapshots never re-hash token text. The
//! interner's concurrency guarantees make the same sharing safe when
//! ingest and snapshotting move to different threads.

use sper_blocking::{
    Block, BlockCollection, BlockId, IncrementalProfileIndex, NeighborList, TokenId, TokenInterner,
};
use sper_model::{ErKind, Profile, ProfileCollection, ProfileId};
use sper_text::{FxHashMap, Tokenizer};
use std::sync::Arc;

/// Sentinel for "token has no block yet" in the id-indexed block map.
const NO_BLOCK: u32 = u32::MAX;

/// Deterministic 64-bit FNV-1a — used to derive per-run shuffle seeds that
/// are stable across processes and rustc versions (unlike
/// `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Updatable schema-agnostic Token Blocking (§3): one block per
/// attribute-value token, maintained under profile appends.
///
/// * [`Self::add_profile`] tokenizes one new profile straight into interned
///   ids and updates the id-indexed block map and the live
///   [`IncrementalProfileIndex`] in `O(|tokens| · log)` amortized — no
///   other profile is touched, no `String` is allocated.
/// * [`Self::snapshot`] materializes a [`BlockCollection`] identical to
///   `TokenBlocking::default().build(..)` on the current collection (same
///   keys, same members, same key-sorted order), so every downstream
///   consumer (`Pbs::from_blocks`, `Pps::from_blocks`, purging, filtering)
///   works unchanged.
///
/// The live index uses *insertion-order* block ids (stable as blocks are
/// appended); the snapshot re-keys to the batch key-sorted order.
#[derive(Debug, Clone)]
pub struct IncrementalTokenBlocking {
    kind: ErKind,
    n_profiles: usize,
    tokenizer: Tokenizer,
    interner: Arc<TokenInterner>,
    /// token id → insertion-order block position in `blocks` (`NO_BLOCK`
    /// when the token has none yet); flat-indexed, grown with the
    /// vocabulary.
    block_of_token: Vec<u32>,
    /// Blocks in insertion order (including not-yet-comparable singletons).
    blocks: Vec<Block>,
    /// Live profile → block-ids index over insertion-order ids.
    index: IncrementalProfileIndex,
    /// All-time tombstone marks, indexed by profile id (`true` =
    /// retracted). Never cleared: ids are not recycled.
    tombstones: Vec<bool>,
    /// Tombstoned members still physically present in `blocks` — zero
    /// right after [`Self::compact`], which is also the fast-path guard
    /// that keeps mutation-free snapshots allocation-identical to PR 1.
    pending: usize,
}

impl IncrementalTokenBlocking {
    /// An empty substrate for a task of the given kind, with its own
    /// interner.
    pub fn new(kind: ErKind) -> Self {
        Self::with_interner(kind, TokenInterner::shared())
    }

    /// An empty substrate sharing an existing interner (cross-substrate /
    /// cross-epoch id stability).
    pub fn with_interner(kind: ErKind, interner: Arc<TokenInterner>) -> Self {
        Self {
            kind,
            n_profiles: 0,
            tokenizer: Tokenizer::default(),
            interner,
            block_of_token: Vec::new(),
            blocks: Vec::new(),
            index: IncrementalProfileIndex::new_empty(0),
            tombstones: Vec::new(),
            pending: 0,
        }
    }

    /// Bootstraps from an existing collection (ingests every profile).
    pub fn from_collection(profiles: &ProfileCollection) -> Self {
        let mut this = Self::new(profiles.kind());
        for p in profiles.iter() {
            this.add_profile(p);
        }
        this
    }

    /// The task kind.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// Number of profiles ingested.
    pub fn n_profiles(&self) -> usize {
        self.n_profiles
    }

    /// Number of distinct blocking keys seen (including singleton blocks
    /// the snapshot will drop).
    pub fn n_keys(&self) -> usize {
        self.blocks.len()
    }

    /// The live profile → blocks index (insertion-order block ids).
    pub fn profile_index(&self) -> &IncrementalProfileIndex {
        &self.index
    }

    /// The live blocks in insertion order (inspection/tests).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Ingests one profile. Ids must arrive densely (`0, 1, 2, …`) — the
    /// `ProfileCollection` invariant.
    ///
    /// # Panics
    ///
    /// Panics when `profile.id` is not the next dense id.
    pub fn add_profile(&mut self, profile: &Profile) {
        assert_eq!(
            profile.id.index(),
            self.n_profiles,
            "profiles must be ingested in dense id order"
        );
        self.n_profiles += 1;
        self.index.add_profiles(1);
        self.tombstones.push(false);

        let mut tokens: Vec<TokenId> = Vec::new();
        for attr in &profile.attributes {
            self.tokenizer
                .tokenize_ids_into(&attr.value, &self.interner, &mut tokens);
        }
        tokens.sort_unstable();
        tokens.dedup();
        if let Some(&max) = tokens.last() {
            if max.index() >= self.block_of_token.len() {
                self.block_of_token.resize(max.index() + 1, NO_BLOCK);
            }
        }

        // Existing blocks must be updated in ascending insertion id so the
        // new profile's block list stays sorted; new keys then append with
        // ever-larger ids.
        let mut existing: Vec<u32> = Vec::new();
        let mut fresh: Vec<TokenId> = Vec::new();
        for tok in tokens {
            match self.block_of_token[tok.index()] {
                NO_BLOCK => fresh.push(tok),
                id => existing.push(id),
            }
        }
        existing.sort_unstable();
        for id in existing {
            let block = &mut self.blocks[id as usize];
            block.push_member(profile.id, profile.source);
            let cardinality = block.cardinality(self.kind);
            self.index.add_member(BlockId(id), profile.id, cardinality);
        }
        for tok in fresh {
            let id = self.blocks.len() as u32;
            let mut block = Block::new(tok, Vec::new());
            block.push_member(profile.id, profile.source);
            self.block_of_token[tok.index()] = id;
            self.index.push_block(&[profile.id], 0);
            self.blocks.push(block);
        }
    }

    /// Ingests a batch of profiles.
    pub fn add_batch<'a>(&mut self, profiles: impl IntoIterator<Item = &'a Profile>) {
        for p in profiles {
            self.add_profile(p);
        }
    }

    /// Reassembles a substrate from its live blocks and index — the
    /// inverse of [`blocks`](Self::blocks) +
    /// [`profile_index`](Self::profile_index), used by the persistence
    /// layer (`sper-store`) to restore checkpoints. The token → block map
    /// is rebuilt from the blocks' keys. Callers must validate untrusted
    /// input first (block keys resolvable by `interner`, index consistent
    /// with `blocks`); invariants are only debug-asserted here.
    pub fn from_parts(
        kind: ErKind,
        n_profiles: usize,
        interner: Arc<TokenInterner>,
        blocks: Vec<Block>,
        index: IncrementalProfileIndex,
    ) -> Self {
        debug_assert_eq!(index.total_blocks(), blocks.len());
        debug_assert_eq!(index.n_profiles(), n_profiles);
        let max_token = blocks.iter().map(|b| b.key.index()).max();
        let mut block_of_token = vec![NO_BLOCK; max_token.map_or(0, |m| m + 1)];
        for (i, b) in blocks.iter().enumerate() {
            debug_assert_eq!(
                block_of_token[b.key.index()],
                NO_BLOCK,
                "one block per token"
            );
            block_of_token[b.key.index()] = i as u32;
        }
        Self {
            kind,
            n_profiles,
            tokenizer: Tokenizer::default(),
            interner,
            block_of_token,
            blocks,
            index,
            tombstones: vec![false; n_profiles],
            pending: 0,
        }
    }

    /// Retracts a profile: marks it tombstoned and retires it from the
    /// live profile → blocks index. Its memberships on the *block* side
    /// stay physically present (per-block cardinalities in the live index
    /// are stale to the same extent) until [`Self::compact`]; every
    /// [`Self::snapshot`] filters them out in the meantime, so read paths
    /// never see the profile again.
    ///
    /// # Panics
    ///
    /// Panics when the id was never ingested or is already tombstoned.
    pub fn retract(&mut self, id: ProfileId) {
        assert!(id.index() < self.n_profiles, "retract of unknown {id}");
        assert!(!self.tombstones[id.index()], "double retract of {id}");
        self.tombstones[id.index()] = true;
        self.pending += 1;
        self.index.retire(id);
    }

    /// True when the profile was retracted.
    #[inline]
    pub fn is_tombstoned(&self, id: ProfileId) -> bool {
        self.tombstones[id.index()]
    }

    /// All-time tombstoned ids, ascending.
    pub fn tombstoned_ids(&self) -> impl Iterator<Item = ProfileId> + '_ {
        self.tombstones
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| ProfileId(i as u32))
    }

    /// Tombstoned profiles not yet physically dropped by
    /// [`Self::compact`].
    pub fn pending_tombstones(&self) -> usize {
        self.pending
    }

    /// Re-applies persisted tombstone state after [`Self::from_parts`]:
    /// `tombstoned` is the all-time set, `pending` how many of them still
    /// have physical block memberships (zero when the checkpoint was taken
    /// post-compaction). Callers (the persistence layer) must validate
    /// untrusted input first.
    pub fn restore_tombstones(
        &mut self,
        tombstoned: impl IntoIterator<Item = ProfileId>,
        pending: usize,
    ) {
        for id in tombstoned {
            debug_assert!(id.index() < self.n_profiles);
            self.tombstones[id.index()] = true;
            self.index.retire(id);
        }
        self.pending = pending;
    }

    /// Physically drops every tombstoned member: filters the blocks,
    /// drops the ones left empty, renumbers the insertion-order block ids
    /// (relative order preserved), and rebuilds the token → block map and
    /// the live profile → blocks index over the new ids. Returns the
    /// number of tombstones that had pending memberships.
    ///
    /// Renumbering is invisible to every read path: snapshots re-key to
    /// key-sorted order anyway, and the live index is rebuilt in lockstep.
    /// Post-compaction, the substrate is member-for-member identical to
    /// one that never ingested the retracted profiles (the husk ids keep
    /// their — now empty — index slots so dense ids stay addressable).
    pub fn compact(&mut self) -> usize {
        if self.pending == 0 {
            return 0;
        }
        let old_blocks = std::mem::take(&mut self.blocks);
        for slot in &mut self.block_of_token {
            *slot = NO_BLOCK;
        }
        let mut index = IncrementalProfileIndex::new_empty(self.n_profiles);
        for (p, &dead) in self.tombstones.iter().enumerate() {
            if dead {
                index.retire(ProfileId(p as u32));
            }
        }
        let mut blocks = Vec::with_capacity(old_blocks.len());
        for mut block in old_blocks {
            if block.profiles().iter().any(|p| self.tombstones[p.index()]) {
                let Some(filtered) = filter_block(&block, &self.tombstones) else {
                    continue;
                };
                block = filtered;
            }
            let id = blocks.len() as u32;
            self.block_of_token[block.key.index()] = id;
            index.push_block(block.profiles(), block.cardinality(self.kind));
            blocks.push(block);
        }
        self.blocks = blocks;
        self.index = index;
        std::mem::take(&mut self.pending)
    }

    /// Materializes the current blocks as a batch-identical
    /// [`BlockCollection`]: comparable blocks only, sorted by key string —
    /// exactly what `TokenBlocking::default().build(..)` produces on the
    /// same collection. Tombstoned members are filtered out lazily, so the
    /// snapshot is the same whether [`Self::compact`] already ran or not.
    pub fn snapshot(&self) -> BlockCollection {
        let mut coll = if self.pending == 0 {
            // Pack straight from the live blocks — no intermediate owned
            // Vec on the mutation-free fast path.
            BlockCollection::from_borrowed(
                self.kind,
                self.n_profiles,
                Arc::clone(&self.interner),
                self.blocks.iter().filter(|b| b.cardinality(self.kind) > 0),
            )
        } else {
            let filtered: Vec<Block> = self
                .blocks
                .iter()
                .filter_map(|b| filter_block(b, &self.tombstones))
                .collect();
            BlockCollection::from_borrowed(
                self.kind,
                self.n_profiles,
                Arc::clone(&self.interner),
                filtered.iter().filter(|b| b.cardinality(self.kind) > 0),
            )
        };
        coll.sort_by_key_str();
        coll
    }
}

/// `block` without its tombstoned members (`None` when nothing survives).
/// Partition order is preserved, so the result is a valid
/// partitioned-ascending block over the survivors.
fn filter_block(block: &Block, tombstones: &[bool]) -> Option<Block> {
    if block.profiles().iter().all(|p| !tombstones[p.index()]) {
        return Some(block.clone());
    }
    let live_first = block
        .first_source()
        .iter()
        .filter(|p| !tombstones[p.index()])
        .count() as u32;
    let members: Vec<ProfileId> = block
        .profiles()
        .iter()
        .copied()
        .filter(|p| !tombstones[p.index()])
        .collect();
    if members.is_empty() {
        return None;
    }
    Some(Block::from_partitioned(block.key, members, live_first))
}

/// One equal-key run of the incremental Neighbor List.
#[derive(Debug, Clone)]
struct Run {
    /// Members in ascending id order (insertion order under streaming).
    members: Vec<ProfileId>,
    /// Cached coincidental-proximity permutation of `members`.
    order: Vec<ProfileId>,
    /// Whether `order` is stale.
    dirty: bool,
}

/// Updatable schema-agnostic Neighbor List (§3.2): the alphabetically
/// sorted token placements maintained under profile appends.
///
/// Equal-key runs get their *coincidental proximity* (§4.1) from a
/// per-run permutation seeded by `hash(seed, key)` over the sorted member
/// set — a canonical function of the final profile set, so the list is
/// **batching-invariant**: any ingest split yields the identical list.
/// (The batch [`NeighborList::build`] threads one RNG through all runs
/// instead; both are valid coincidental orders, and every set-level
/// guarantee of the similarity-based methods is order-independent.)
///
/// Runs are keyed by [`TokenId`] in a flat hash map; the alphabetical
/// order the Neighbor List requires is recovered at
/// [`snapshot`](Self::snapshot) time from one interner rank table.
#[derive(Debug, Clone)]
pub struct IncrementalNeighborList {
    seed: u64,
    tokenizer: Tokenizer,
    interner: Arc<TokenInterner>,
    n_profiles: usize,
    runs: FxHashMap<TokenId, Run>,
    total_placements: usize,
    /// All-time tombstone marks, indexed by profile id (`true` =
    /// retracted). Never cleared: ids are not recycled.
    tombstones: Vec<bool>,
    /// Tombstoned profiles whose placements are still physically present
    /// in `runs` — zero right after [`Self::compact`].
    pending: usize,
}

impl IncrementalNeighborList {
    /// An empty list with the given tie-shuffling seed and its own
    /// interner.
    pub fn new(seed: u64) -> Self {
        Self::with_interner(seed, TokenInterner::shared())
    }

    /// An empty list sharing an existing interner.
    pub fn with_interner(seed: u64, interner: Arc<TokenInterner>) -> Self {
        Self {
            seed,
            tokenizer: Tokenizer::default(),
            interner,
            n_profiles: 0,
            runs: FxHashMap::default(),
            total_placements: 0,
            tombstones: Vec::new(),
            pending: 0,
        }
    }

    /// Bootstraps from an existing collection (ingests every profile).
    pub fn from_collection(profiles: &ProfileCollection, seed: u64) -> Self {
        let mut this = Self::new(seed);
        for p in profiles.iter() {
            this.add_profile(p);
        }
        this
    }

    /// Reassembles a list from its per-token runs — the inverse of
    /// [`runs`](Self::runs), used by the persistence layer (`sper-store`)
    /// to restore checkpoints. Every run starts stale: its coincidental-
    /// proximity permutation is recomputed at the next
    /// [`snapshot`](Self::snapshot) — a pure function of the member set
    /// and `seed`, so restored snapshots are bit-identical to the
    /// uninterrupted session's. Callers must validate untrusted input
    /// first; invariants are only debug-asserted here.
    pub fn from_parts(
        seed: u64,
        n_profiles: usize,
        interner: Arc<TokenInterner>,
        runs: impl IntoIterator<Item = (TokenId, Vec<ProfileId>)>,
    ) -> Self {
        let mut total_placements = 0;
        let runs: FxHashMap<TokenId, Run> = runs
            .into_iter()
            .map(|(token, members)| {
                debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
                total_placements += members.len();
                (
                    token,
                    Run {
                        members,
                        order: Vec::new(),
                        dirty: true,
                    },
                )
            })
            .collect();
        Self {
            seed,
            tokenizer: Tokenizer::default(),
            interner,
            n_profiles,
            runs,
            total_placements,
            tombstones: vec![false; n_profiles],
            pending: 0,
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// The tie-shuffling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of profiles ingested.
    pub fn n_profiles(&self) -> usize {
        self.n_profiles
    }

    /// The per-token equal-key runs (token, members in ascending id
    /// order), in unspecified iteration order — the persistence boundary
    /// (`sper-store`) serializes these.
    pub fn runs(&self) -> impl Iterator<Item = (TokenId, &[ProfileId])> {
        self.runs
            .iter()
            .map(|(&t, run)| (t, run.members.as_slice()))
    }

    /// Total placements (the Neighbor List length).
    pub fn len(&self) -> usize {
        self.total_placements
    }

    /// True when no profile produced any token.
    pub fn is_empty(&self) -> bool {
        self.total_placements == 0
    }

    /// Ingests one profile: one placement per distinct token, appended to
    /// that token's run. `O(|tokens|)` amortized; the run's cached
    /// permutation is invalidated lazily.
    ///
    /// # Panics
    ///
    /// Panics when `profile.id` is not the next dense id.
    pub fn add_profile(&mut self, profile: &Profile) {
        assert_eq!(
            profile.id.index(),
            self.n_profiles,
            "profiles must be ingested in dense id order"
        );
        self.n_profiles += 1;
        self.tombstones.push(false);
        let mut tokens: Vec<TokenId> = Vec::new();
        for attr in &profile.attributes {
            self.tokenizer
                .tokenize_ids_into(&attr.value, &self.interner, &mut tokens);
        }
        tokens.sort_unstable();
        tokens.dedup();
        for tok in tokens {
            let run = self.runs.entry(tok).or_insert_with(|| Run {
                members: Vec::new(),
                order: Vec::new(),
                dirty: false,
            });
            run.members.push(profile.id);
            run.dirty = true;
            self.total_placements += 1;
        }
    }

    /// Ingests a batch of profiles.
    pub fn add_batch<'a>(&mut self, profiles: impl IntoIterator<Item = &'a Profile>) {
        for p in profiles {
            self.add_profile(p);
        }
    }

    /// Retracts a profile: marks it tombstoned. Its placements stay
    /// physically present in the runs until [`Self::compact`]; every
    /// [`Self::snapshot`] filters them out (and reshuffles the affected
    /// runs over the surviving member sets) in the meantime.
    ///
    /// # Panics
    ///
    /// Panics when the id was never ingested or is already tombstoned.
    pub fn retract(&mut self, id: ProfileId) {
        assert!(id.index() < self.n_profiles, "retract of unknown {id}");
        assert!(!self.tombstones[id.index()], "double retract of {id}");
        self.tombstones[id.index()] = true;
        self.pending += 1;
    }

    /// True when the profile was retracted.
    #[inline]
    pub fn is_tombstoned(&self, id: ProfileId) -> bool {
        self.tombstones[id.index()]
    }

    /// All-time tombstoned ids, ascending.
    pub fn tombstoned_ids(&self) -> impl Iterator<Item = ProfileId> + '_ {
        self.tombstones
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| ProfileId(i as u32))
    }

    /// Tombstoned profiles not yet physically dropped by
    /// [`Self::compact`].
    pub fn pending_tombstones(&self) -> usize {
        self.pending
    }

    /// Re-applies persisted tombstone state after [`Self::from_parts`] —
    /// see `IncrementalTokenBlocking::restore_tombstones`.
    pub fn restore_tombstones(
        &mut self,
        tombstoned: impl IntoIterator<Item = ProfileId>,
        pending: usize,
    ) {
        for id in tombstoned {
            debug_assert!(id.index() < self.n_profiles);
            self.tombstones[id.index()] = true;
        }
        self.pending = pending;
    }

    /// Physically drops every tombstoned placement: filters each run's
    /// member set, drops runs left empty, and marks the changed runs dirty
    /// so the next [`Self::snapshot`] reshuffles them over the surviving
    /// members — the same permutation a list that never saw the retracted
    /// profiles would draw, because run shuffles are a pure function of
    /// `(seed, key, member set)`. Returns the number of tombstones that
    /// had pending placements.
    pub fn compact(&mut self) -> usize {
        if self.pending == 0 {
            return 0;
        }
        let tombstones = &self.tombstones;
        self.runs.retain(|_, run| {
            if run.members.iter().any(|p| tombstones[p.index()]) {
                run.members.retain(|p| !tombstones[p.index()]);
                run.dirty = true;
                run.order = Vec::new();
            }
            !run.members.is_empty()
        });
        self.total_placements = self.runs.values().map(|r| r.members.len()).sum();
        std::mem::take(&mut self.pending)
    }

    /// Materializes the current placements as a [`NeighborList`]. Stale
    /// runs recompute their canonical permutation (amortized: a run is
    /// reshuffled only after it changed); assembling the flat list is
    /// `O(placements)` plus one vocabulary-sized rank sort — no
    /// re-tokenization and no placement-level sort.
    ///
    /// Tombstoned members are filtered lazily: a run still carrying dead
    /// placements is shuffled over its *surviving* member set into scratch
    /// (its cache is left untouched until [`Self::compact`]), so the
    /// snapshot is bit-identical whether compaction already ran or not.
    pub fn snapshot(&mut self) -> NeighborList {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let seed = self.seed;
        let rank = self.interner.rank();
        let mut keys: Vec<TokenId> = self.runs.keys().copied().collect();
        keys.sort_unstable_by_key(|t| rank[t.index()]);
        let mut placements: Vec<(TokenId, ProfileId)> = Vec::with_capacity(self.total_placements);
        let mut scratch: Vec<ProfileId> = Vec::new();
        for key in keys {
            let run = self.runs.get_mut(&key).expect("run exists");
            if self.pending > 0 && run.members.iter().any(|p| self.tombstones[p.index()]) {
                // Lazy filtering: shuffle the survivors without touching
                // the run's cache — compact() will make this permanent.
                scratch.clear();
                scratch.extend(
                    run.members
                        .iter()
                        .copied()
                        .filter(|p| !self.tombstones[p.index()]),
                );
                if scratch.is_empty() {
                    continue;
                }
                let key_str = self.interner.resolve(key);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ fnv1a(key_str.as_bytes()));
                scratch.shuffle(&mut rng);
                placements.extend(scratch.iter().map(|&p| (key, p)));
                continue;
            }
            if run.dirty {
                // Only stale runs pay the key resolution for their seed.
                let key_str = self.interner.resolve(key);
                run.order = run.members.clone();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ fnv1a(key_str.as_bytes()));
                run.order.shuffle(&mut rng);
                run.dirty = false;
            }
            placements.extend(run.order.iter().map(|&p| (key, p)));
        }
        NeighborList::from_sorted_placements(
            placements,
            Arc::clone(&self.interner),
            self.n_profiles,
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::{ProfileIndex, TokenBlocking};
    use sper_model::{Attribute, ProfileCollectionBuilder};

    fn collection(n: u32) -> ProfileCollection {
        let mut b = ProfileCollectionBuilder::dirty();
        for i in 0..n {
            let base = i % (n / 2).max(1);
            b.add_profile([
                ("name", format!("alpha{} beta{}", base, base % 5)),
                ("city", format!("town{}", base % 3)),
            ]);
        }
        b.build()
    }

    fn keys_and_members(blocks: &BlockCollection) -> Vec<(String, Vec<ProfileId>)> {
        blocks
            .iter()
            .map(|b| (b.key_str().to_string(), b.profiles().to_vec()))
            .collect()
    }

    #[test]
    fn snapshot_equals_batch_token_blocking() {
        let coll = collection(40);
        let batch = TokenBlocking::default().build(&coll);
        let inc = IncrementalTokenBlocking::from_collection(&coll);
        assert_eq!(keys_and_members(&inc.snapshot()), keys_and_members(&batch));
    }

    #[test]
    fn blocking_is_batching_invariant() {
        let coll = collection(30);
        let all_at_once = IncrementalTokenBlocking::from_collection(&coll);
        for split in [1usize, 7, 13] {
            let mut inc = IncrementalTokenBlocking::new(ErKind::Dirty);
            for chunk in coll.profiles().chunks(split) {
                inc.add_batch(chunk);
            }
            assert_eq!(
                keys_and_members(&inc.snapshot()),
                keys_and_members(&all_at_once.snapshot()),
                "split = {split}"
            );
        }
    }

    #[test]
    fn live_index_tracks_snapshot_membership() {
        let coll = collection(24);
        let inc = IncrementalTokenBlocking::from_collection(&coll);
        let index = inc.profile_index();
        // Every profile's live block list names blocks that do contain it.
        for p in coll.iter() {
            for &bid in index.blocks_of(p.id) {
                // Insertion-order ids address `blocks` directly.
                assert!(
                    inc.blocks()[bid as usize].profiles().contains(&p.id),
                    "block {bid} should contain {}",
                    p.id
                );
            }
        }
        // Intersections over the live index match a rebuilt batch index on
        // the same (insertion-ordered) blocks.
        let rebuilt = ProfileIndex::build(&BlockCollection::new(
            ErKind::Dirty,
            coll.len(),
            Arc::clone(inc.interner()),
            inc.blocks().to_vec(),
        ));
        for a in 0..coll.len() as u32 {
            for b in (a + 1)..coll.len() as u32 {
                let (a, b) = (ProfileId(a), ProfileId(b));
                assert_eq!(index.intersect(a, b), rebuilt.intersect(a, b));
            }
        }
    }

    #[test]
    fn neighbor_list_is_batching_invariant() {
        let coll = collection(30);
        let mut all_at_once = IncrementalNeighborList::from_collection(&coll, 42);
        let reference = all_at_once.snapshot();
        for split in [1usize, 4, 11] {
            let mut inc = IncrementalNeighborList::new(42);
            for chunk in coll.profiles().chunks(split) {
                inc.add_batch(chunk);
            }
            assert_eq!(
                inc.snapshot().as_slice(),
                reference.as_slice(),
                "split = {split}"
            );
        }
    }

    #[test]
    fn neighbor_list_placement_multiset_matches_batch() {
        // Same placements as the batch list (only run-internal order may
        // differ), hence identical position-index shape.
        let coll = collection(20);
        let batch = NeighborList::build(&coll, 42);
        let mut inc = IncrementalNeighborList::from_collection(&coll, 42);
        let snap = inc.snapshot();
        assert_eq!(snap.len(), batch.len());
        for p in coll.iter() {
            assert_eq!(
                snap.position_index().num_positions(p.id),
                batch.position_index().num_positions(p.id),
                "{}",
                p.id
            );
        }
        let mut a: Vec<ProfileId> = snap.as_slice().to_vec();
        let mut b: Vec<ProfileId> = batch.as_slice().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_interner_across_substrates() {
        let coll = collection(12);
        let interner = TokenInterner::shared();
        let mut blocks =
            IncrementalTokenBlocking::with_interner(ErKind::Dirty, Arc::clone(&interner));
        let mut nl = IncrementalNeighborList::with_interner(7, Arc::clone(&interner));
        for p in coll.iter() {
            blocks.add_profile(p);
            nl.add_profile(p);
        }
        // One vocabulary: every block key resolves through the shared
        // interner, and the NL snapshot reuses the same ids.
        assert_eq!(blocks.interner().len(), interner.len());
        let snap = blocks.snapshot();
        assert!(std::sync::Arc::ptr_eq(snap.interner(), &interner));
        let list = nl.snapshot();
        assert!(std::sync::Arc::ptr_eq(list.interner(), &interner));
    }

    #[test]
    fn clean_clean_streaming_into_second_source() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("n", "acme corp")]);
        b.add_profile([("n", "zenith inc")]);
        b.start_second_source();
        let mut coll = b.build();
        let mut inc = IncrementalTokenBlocking::from_collection(&coll);
        let id = coll.append_profile(vec![Attribute::new("n", "acme corporation")]);
        inc.add_profile(coll.get(id));
        let snap = inc.snapshot();
        let batch = TokenBlocking::default().build(&coll);
        assert_eq!(keys_and_members(&snap), keys_and_members(&batch));
        // The "acme" block now yields exactly the one cross-source pair.
        let acme = snap.iter().find(|b| &*b.key_str() == "acme").unwrap();
        assert_eq!(acme.cardinality(ErKind::CleanClean), 1);
    }

    #[test]
    fn lazy_snapshot_equals_compacted_snapshot() {
        let coll = collection(30);
        let mut inc = IncrementalTokenBlocking::from_collection(&coll);
        for id in [3u32, 7, 15] {
            inc.retract(ProfileId(id));
        }
        assert_eq!(inc.pending_tombstones(), 3);
        let lazy = keys_and_members(&inc.snapshot());
        for (key, members) in &lazy {
            assert!(
                members.iter().all(|p| ![3, 7, 15].contains(&p.0)),
                "tombstoned member leaked into block {key}"
            );
        }
        assert_eq!(inc.compact(), 3);
        assert_eq!(inc.pending_tombstones(), 0);
        assert_eq!(keys_and_members(&inc.snapshot()), lazy);
        // The live index retired the ids alongside.
        assert!(inc.profile_index().blocks_of(ProfileId(3)).is_empty());
        assert!(inc.is_tombstoned(ProfileId(3)));
        assert_eq!(inc.tombstoned_ids().count(), 3);
    }

    #[test]
    fn nl_lazy_snapshot_equals_compacted_snapshot() {
        let coll = collection(30);
        let mut inc = IncrementalNeighborList::from_collection(&coll, 42);
        for id in [2u32, 9] {
            inc.retract(ProfileId(id));
        }
        let lazy = inc.snapshot();
        assert!(lazy.as_slice().iter().all(|p| p.0 != 2 && p.0 != 9));
        assert_eq!(inc.compact(), 2);
        assert_eq!(inc.pending_tombstones(), 0);
        assert_eq!(lazy.as_slice(), inc.snapshot().as_slice());
    }

    #[test]
    fn retract_equals_never_ingested_husk() {
        // A substrate with retractions — compacted or not — snapshots
        // identically to one whose ingest only ever saw empty husks in the
        // retracted slots (same dense ids, no attributes).
        let coll = collection(24);
        let mut husked = coll.clone();
        for id in [1u32, 5, 12] {
            husked.retract_profile(ProfileId(id));
        }
        let fresh = IncrementalTokenBlocking::from_collection(&husked);
        let mut mutated = IncrementalTokenBlocking::from_collection(&coll);
        for id in [1u32, 5, 12] {
            mutated.retract(ProfileId(id));
        }
        let want = keys_and_members(&fresh.snapshot());
        assert_eq!(keys_and_members(&mutated.snapshot()), want);
        mutated.compact();
        assert_eq!(keys_and_members(&mutated.snapshot()), want);

        let mut fresh_nl = IncrementalNeighborList::from_collection(&husked, 7);
        let mut mut_nl = IncrementalNeighborList::from_collection(&coll, 7);
        for id in [1u32, 5, 12] {
            mut_nl.retract(ProfileId(id));
        }
        let want = fresh_nl.snapshot();
        assert_eq!(mut_nl.snapshot().as_slice(), want.as_slice());
        mut_nl.compact();
        assert_eq!(mut_nl.snapshot().as_slice(), want.as_slice());
    }

    #[test]
    #[should_panic(expected = "double retract")]
    fn double_retract_panics() {
        let coll = collection(6);
        let mut inc = IncrementalTokenBlocking::from_collection(&coll);
        inc.retract(ProfileId(0));
        inc.retract(ProfileId(0));
    }

    #[test]
    #[should_panic(expected = "dense id order")]
    fn non_dense_ingest_panics() {
        let coll = collection(4);
        let mut inc = IncrementalTokenBlocking::new(ErKind::Dirty);
        inc.add_profile(coll.get(ProfileId(1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sper_blocking::TokenBlocking;
    use sper_model::ProfileCollectionBuilder;

    fn arbitrary_collection() -> impl Strategy<Value = ProfileCollection> {
        proptest::collection::vec("[a-e ]{1,8}", 1..20).prop_map(|values| {
            let mut b = ProfileCollectionBuilder::dirty();
            for v in values {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
    }

    proptest! {
        /// The incremental snapshot equals batch Token Blocking for every
        /// collection and every batching of its ingest.
        #[test]
        fn snapshot_equivalence(coll in arbitrary_collection(), split in 1usize..8) {
            let batch = TokenBlocking::default().build(&coll);
            let mut inc = IncrementalTokenBlocking::new(ErKind::Dirty);
            for chunk in coll.profiles().chunks(split) {
                inc.add_batch(chunk);
            }
            let snap = inc.snapshot();
            prop_assert_eq!(snap.len(), batch.len());
            for (a, b) in snap.iter().zip(batch.iter()) {
                prop_assert_eq!(a.key_str(), b.key_str());
                prop_assert_eq!(a.profiles(), b.profiles());
            }
        }

        /// The incremental Neighbor List is a pure function of the final
        /// profile set, whatever the batch split.
        #[test]
        fn neighbor_list_invariance(coll in arbitrary_collection(), split in 1usize..8) {
            let mut whole = IncrementalNeighborList::from_collection(&coll, 7);
            let mut inc = IncrementalNeighborList::new(7);
            for chunk in coll.profiles().chunks(split) {
                inc.add_batch(chunk);
            }
            let (inc_snap, whole_snap) = (inc.snapshot(), whole.snapshot());
            prop_assert_eq!(inc_snap.as_slice(), whole_snap.as_slice());
        }
    }
}
