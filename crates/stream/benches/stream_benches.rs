//! Streaming micro-benchmarks: ingest throughput of the incremental
//! substrates and sessions (profiles/sec), and re-emission latency — the
//! cost of `reprioritize + emit` after a small ingest delta, versus
//! rebuilding the method from scratch.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec, GeneratedDataset};
use sper_model::{Attribute, ErKind, ProfileCollectionBuilder};
use sper_stream::{
    IncrementalNeighborList, IncrementalTokenBlocking, ProgressiveSession, SessionConfig,
};

fn census() -> GeneratedDataset {
    DatasetSpec::paper(DatasetKind::Census).generate()
}

fn rows(data: &GeneratedDataset) -> Vec<Vec<Attribute>> {
    data.profiles.iter().map(|p| p.attributes.clone()).collect()
}

/// Substrate-level ingest: amortized per-profile index updates over the
/// whole census twin (throughput = |P| / reported time).
fn bench_substrate_ingest(c: &mut Criterion) {
    let data = census();
    let n = data.profiles.len();
    let mut group = c.benchmark_group("substrate_ingest");
    group.bench_function(BenchmarkId::new("token_blocking", n), |b| {
        b.iter_batched(
            || IncrementalTokenBlocking::new(ErKind::Dirty),
            |mut index| {
                index.add_batch(data.profiles.iter());
                black_box(index.n_keys())
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function(BenchmarkId::new("neighbor_list", n), |b| {
        b.iter_batched(
            || IncrementalNeighborList::new(42),
            |mut nl| {
                nl.add_batch(data.profiles.iter());
                black_box(nl.len())
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Session-level ingest throughput: profile append + substrate update per
/// method family (blocks for PPS, neighbor list for LS-PSN).
fn bench_session_ingest(c: &mut Criterion) {
    let data = census();
    let all = rows(&data);
    let n = all.len();
    let mut group = c.benchmark_group("session_ingest");
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::LsPsn] {
        group.bench_with_input(BenchmarkId::new(method.name(), n), &method, |b, &method| {
            b.iter_batched(
                || {
                    (
                        ProgressiveSession::new(
                            ProfileCollectionBuilder::dirty().build(),
                            SessionConfig::exhaustive(method),
                        ),
                        all.clone(),
                    )
                },
                |(mut session, batch)| {
                    let ids = session.ingest_batch(batch);
                    black_box(ids.end)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Re-emission latency: a warm session ingests a 5 % delta and runs one
/// `reprioritize + emit` epoch; compared against rebuilding the batch
/// method on the grown collection from scratch.
fn bench_reemission(c: &mut Criterion) {
    let data = census();
    let all = rows(&data);
    let split = all.len() * 95 / 100;
    let (base, delta) = all.split_at(split);
    let mut group = c.benchmark_group("reemission_after_delta");
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::LsPsn] {
        group.bench_with_input(
            BenchmarkId::new(format!("session_{}", method.name()), delta.len()),
            &method,
            |b, &method| {
                b.iter_batched(
                    || {
                        let mut session = ProgressiveSession::new(
                            ProfileCollectionBuilder::dirty().build(),
                            SessionConfig::exhaustive(method),
                        );
                        session.ingest_batch(base.to_vec());
                        session.emit_epoch(None); // drain the warm epoch
                        (session, delta.to_vec())
                    },
                    |(mut session, delta)| {
                        session.ingest_batch(delta);
                        let outcome = session.emit_epoch(Some(1_000));
                        black_box(outcome.report.new_emissions)
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("rebuild_{}", method.name()), delta.len()),
            &method,
            |b, &method| {
                let config = SessionConfig::exhaustive(method).config;
                b.iter(|| {
                    let mut m = build_method(method, &data.profiles, &config, None);
                    let mut emitted = 0u64;
                    for _ in 0..1_000 {
                        if m.next().is_none() {
                            break;
                        }
                        emitted += 1;
                    }
                    black_box(emitted)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrate_ingest,
    bench_session_ingest,
    bench_reemission
);
criterion_main!(benches);
