//! The streaming counterpart of the paper's *Same Eventual Quality*
//! requirement (§3.1), as demanded by the subsystem's acceptance criteria:
//! a `ProgressiveSession` that ingests a dataset in ≥ 3 batches emits,
//! cumulatively, exactly the batch method's comparison set on the full
//! collection — same pairs, no duplicate emissions across epochs.
//!
//! Checked for LS-PSN and PPS (plus SA-PSN and PBS for coverage) on a
//! generated twin, under the substrate-monotone `SessionConfig::exhaustive`
//! regime (see `sper_stream::session` docs for why pruning configurations
//! cannot make this exact).

use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_model::{Attribute, Pair, ProfileCollection, ProfileCollectionBuilder};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::collections::HashSet;

/// The batch method's full emission set on `profiles` under `config`.
fn batch_emission_set(
    method: ProgressiveMethod,
    profiles: &ProfileCollection,
    config: &SessionConfig,
) -> HashSet<Pair> {
    build_method(method, profiles, &config.config, None)
        .map(|c| c.pair)
        .collect()
}

/// Streams `profiles` into a session in `n_batches` and drains every
/// epoch, returning the cumulative emission set (asserting no pair is
/// emitted twice along the way).
fn streamed_emission_set(
    profiles: &ProfileCollection,
    config: SessionConfig,
    n_batches: usize,
) -> HashSet<Pair> {
    let mut session = ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config);
    let all: Vec<Vec<Attribute>> = profiles.iter().map(|p| p.attributes.clone()).collect();
    let chunk = all.len().div_ceil(n_batches);
    let mut cumulative: HashSet<Pair> = HashSet::new();
    for batch in all.chunks(chunk) {
        session.ingest_batch(batch.to_vec());
        let outcome = session.emit_epoch(None);
        for c in &outcome.comparisons {
            assert!(
                cumulative.insert(c.pair),
                "duplicate emission across epochs: {:?}",
                c.pair
            );
        }
    }
    assert_eq!(session.profiles().len(), profiles.len());
    cumulative
}

fn twin() -> sper_datagen::GeneratedDataset {
    DatasetSpec::paper(DatasetKind::Restaurant)
        .with_scale(0.12)
        .generate()
}

fn assert_equivalent(method: ProgressiveMethod, n_batches: usize) {
    let data = twin();
    let config = SessionConfig::exhaustive(method);
    let batch = batch_emission_set(method, &data.profiles, &config);
    let streamed = streamed_emission_set(&data.profiles, config, n_batches);
    assert_eq!(
        streamed.len(),
        batch.len(),
        "{method:?}: cumulative streamed count differs from batch"
    );
    assert_eq!(
        streamed, batch,
        "{method:?}: streamed emission set differs from batch"
    );
}

#[test]
fn ls_psn_streaming_equals_batch_in_3_batches() {
    assert_equivalent(ProgressiveMethod::LsPsn, 3);
}

#[test]
fn ls_psn_streaming_equals_batch_in_5_batches() {
    assert_equivalent(ProgressiveMethod::LsPsn, 5);
}

#[test]
fn pps_streaming_equals_batch_in_3_batches() {
    assert_equivalent(ProgressiveMethod::Pps, 3);
}

#[test]
fn pps_streaming_equals_batch_in_7_batches() {
    assert_equivalent(ProgressiveMethod::Pps, 7);
}

#[test]
fn sa_psn_streaming_equals_batch() {
    assert_equivalent(ProgressiveMethod::SaPsn, 4);
}

#[test]
fn gs_psn_streaming_equals_batch() {
    assert_equivalent(ProgressiveMethod::GsPsn, 4);
}

#[test]
fn pbs_streaming_equals_batch() {
    assert_equivalent(ProgressiveMethod::Pbs, 4);
}

/// Clean-clean tasks: the session base fixes `P1`, streamed profiles join
/// `P2` (ids line up with the batch collection), and the cumulative
/// emission set still equals the batch method's — with every pair crossing
/// the two sources.
#[test]
fn clean_clean_p2_streaming_equals_batch() {
    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.03)
        .generate();
    let split = data.profiles.len_first();
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::LsPsn] {
        let config = SessionConfig::exhaustive(method);
        let batch = batch_emission_set(method, &data.profiles, &config);

        let mut base = ProfileCollectionBuilder::clean_clean();
        for p in data.profiles.iter().take(split) {
            base.add_attributes(p.attributes.clone());
        }
        base.start_second_source();
        let mut session = ProgressiveSession::new(base.build(), config);
        let p2: Vec<Vec<Attribute>> = data
            .profiles
            .iter()
            .skip(split)
            .map(|p| p.attributes.clone())
            .collect();
        let mut cumulative: HashSet<Pair> = HashSet::new();
        for batch_rows in p2.chunks(p2.len().div_ceil(3)) {
            session.ingest_batch(batch_rows.to_vec());
            let outcome = session.emit_epoch(None);
            for c in &outcome.comparisons {
                assert!(cumulative.insert(c.pair), "duplicate {:?}", c.pair);
                assert!(
                    (c.pair.first.0 as usize) < split && (c.pair.second.0 as usize) >= split,
                    "{method:?} emitted a same-source pair {:?}",
                    c.pair
                );
            }
        }
        assert_eq!(cumulative, batch, "{method:?}");
    }
}

/// The equivalence also holds when epochs are budgeted, as long as the
/// final epoch drains: interleaving budgets only changes *when* a pair is
/// emitted, never *whether*.
#[test]
fn budgeted_epochs_still_converge_to_batch_set() {
    let data = twin();
    let config = SessionConfig::exhaustive(ProgressiveMethod::Pps);
    let batch = batch_emission_set(ProgressiveMethod::Pps, &data.profiles, &config);

    let mut session = ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config);
    let all: Vec<Vec<Attribute>> = data.profiles.iter().map(|p| p.attributes.clone()).collect();
    let chunk = all.len().div_ceil(4);
    let mut cumulative: HashSet<Pair> = HashSet::new();
    for batch_profiles in all.chunks(chunk) {
        session.ingest_batch(batch_profiles.to_vec());
        // Tight budget: most of each epoch's frontier stays pending.
        let outcome = session.emit_epoch(Some(25));
        cumulative.extend(outcome.comparisons.iter().map(|c| c.pair));
    }
    // Final drain.
    let outcome = session.emit_epoch(None);
    cumulative.extend(outcome.comparisons.iter().map(|c| c.pair));
    assert_eq!(cumulative, batch);
}

/// The sparse-accumulator kernel is substrate-agnostic across epochs: one
/// `WeightAccumulator`, grown with the substrate via `ensure_profiles`,
/// sweeps the *live* incremental index + block array after every ingest
/// batch and reproduces the merge-based weights bit for bit — no frozen
/// snapshot, no per-epoch scratch reallocation.
#[test]
fn kernel_follows_incremental_substrate_across_epochs() {
    use sper_blocking::{WeightAccumulator, WeightingScheme};
    use sper_model::ProfileId;
    use sper_stream::IncrementalTokenBlocking;

    let data = twin();
    let all: Vec<Vec<Attribute>> = data.profiles.iter().map(|p| p.attributes.clone()).collect();
    let mut live = ProfileCollectionBuilder::dirty().build();
    let mut substrate = IncrementalTokenBlocking::new(sper_model::ErKind::Dirty);
    let mut acc = WeightAccumulator::new(0);
    let chunk = all.len().div_ceil(4);
    for batch in all.chunks(chunk) {
        for attrs in batch {
            let id = live.append_profile(attrs.clone());
            substrate.add_profile(live.get(id));
        }
        let n = substrate.n_profiles();
        acc.ensure_profiles(n);
        let index = substrate.profile_index();
        let blocks = substrate.blocks();
        for i in 0..n as u32 {
            let i = ProfileId(i);
            for scheme in [WeightingScheme::Arcs, WeightingScheme::Ecbs] {
                acc.sweep(substrate.kind(), blocks, index, scheme, i, None);
                for t in 0..acc.touched().len() {
                    let j = ProfileId(acc.touched()[t]);
                    assert_eq!(
                        acc.finalize(index, scheme, i, j).to_bits(),
                        index.weight(i, j, scheme).to_bits(),
                        "epoch weight diverged at ({i:?}, {j:?})"
                    );
                }
                acc.reset();
            }
        }
    }
}
