//! The mutation-model test wall — the headline invariant of the
//! update/delete subsystem:
//!
//! > a session that ingests profiles and later retracts some of them
//! > emits, bit for bit, what a session that **never saw** the retracted
//! > profiles emits — both while the tombstones are only lazily filtered
//! > and after a compaction physically drops them — and an update is
//! > indistinguishable from a delete followed by a re-ingest.
//!
//! "Bit for bit" is modulo the only thing that *must* differ: profile
//! ids. Ids are dense and never recycled, so retraction leaves holes; the
//! comparison maps every surviving id through the monotone bijection
//! (k-th survivor ↔ k-th profile of the never-saw-them session) and then
//! demands identical `(pair, weight)` sequences, weights compared by bit
//! pattern. Checked for all six streamable methods, both ER kinds, 1–8
//! worker threads, budgeted and unbudgeted drains, and — via proptest —
//! arbitrary collections and mutation schedules.

use proptest::prelude::*;
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, ErKind, Pair, ProfileCollectionBuilder, ProfileId};
use sper_stream::{CompactionPolicy, ProgressiveSession, SessionConfig};
use std::collections::HashMap;

const STREAMABLE: [ProgressiveMethod; 6] = [
    ProgressiveMethod::SaPsn,
    ProgressiveMethod::SaPsab,
    ProgressiveMethod::LsPsn,
    ProgressiveMethod::GsPsn,
    ProgressiveMethod::Pbs,
    ProgressiveMethod::Pps,
];

/// An emission stream with bit-exact weights.
type Stream = Vec<(Pair, u64)>;

fn rows(n: usize) -> Vec<Vec<Attribute>> {
    [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
        "frances black la baker",
        "joe green sf cook",
    ]
    .iter()
    .cycle()
    .take(n)
    .enumerate()
    .map(|(i, v)| vec![Attribute::new("text", format!("{v} row{}", i % 5))])
    .collect()
}

/// Drains a session to exhaustion in epochs of `budget` new emissions,
/// returning the concatenated stream.
fn drain(session: &mut ProgressiveSession, budget: Option<u64>) -> Stream {
    let mut out = Stream::new();
    loop {
        let outcome = session.emit_epoch(budget);
        if outcome.report.new_emissions == 0 {
            return out;
        }
        out.extend(
            outcome
                .comparisons
                .iter()
                .map(|c| (c.pair, c.weight.to_bits())),
        );
    }
}

/// The monotone survivor bijection plus a fresh session that ingested
/// only the survivors, in the same relative order. For Clean-clean
/// collections the surviving `P1` rows become the fresh session's base
/// and the surviving `P2` rows are streamed — amends always re-ingest
/// into `P2`, so sources line up by construction.
fn fresh_twin(
    mutated: &ProgressiveSession,
    config: SessionConfig,
) -> (ProgressiveSession, HashMap<ProfileId, ProfileId>) {
    let coll = mutated.profiles();
    let survives = |i: usize| !mutated.is_retracted(ProfileId(i as u32));
    let mut map: HashMap<ProfileId, ProfileId> = HashMap::new();
    match coll.kind() {
        ErKind::Dirty => {
            let mut survivors = Vec::new();
            for (i, p) in coll.iter().enumerate() {
                if survives(i) {
                    map.insert(ProfileId(i as u32), ProfileId(survivors.len() as u32));
                    survivors.push(p.attributes.clone());
                }
            }
            let mut fresh =
                ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config);
            fresh.ingest_batch(survivors);
            (fresh, map)
        }
        ErKind::CleanClean => {
            let n1 = coll.len_first();
            let mut base = ProfileCollectionBuilder::clean_clean();
            let mut fresh_n1 = 0u32;
            for (i, p) in coll.iter().enumerate().take(n1) {
                if survives(i) {
                    map.insert(ProfileId(i as u32), ProfileId(fresh_n1));
                    fresh_n1 += 1;
                    base.add_attributes(p.attributes.clone());
                }
            }
            base.start_second_source();
            let mut streamed = Vec::new();
            for (i, p) in coll.iter().enumerate().skip(n1) {
                if survives(i) {
                    map.insert(
                        ProfileId(i as u32),
                        ProfileId(fresh_n1 + streamed.len() as u32),
                    );
                    streamed.push(p.attributes.clone());
                }
            }
            let mut fresh = ProgressiveSession::new(base.build(), config);
            fresh.ingest_batch(streamed);
            (fresh, map)
        }
    }
}

fn map_stream(stream: Stream, map: &HashMap<ProfileId, ProfileId>) -> Stream {
    stream
        .into_iter()
        .map(|(p, w)| (Pair::new(map[&p.first], map[&p.second]), w))
        .collect()
}

/// Tier (a): every mutation lands before the first emission, so the whole
/// stream must match the never-ingested twin — lazily filtered *and*
/// compacted.
fn assert_delete_equals_never_ingested(
    method: ProgressiveMethod,
    threads: usize,
    compact_first: bool,
    budget: Option<u64>,
) {
    let config = SessionConfig::exhaustive(method)
        .with_threads(sper_core::Parallelism::new(threads).unwrap())
        .with_compaction(CompactionPolicy::manual());
    let mut mutated =
        ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config.clone());
    for chunk in rows(14).chunks(5) {
        mutated.ingest_batch(chunk.to_vec());
    }
    // ids 0..=13 ingested; the amends re-ingest as ids 14 and 15.
    mutated.retract(ProfileId(1));
    mutated.retract(ProfileId(5));
    mutated.amend(
        ProfileId(3),
        vec![Attribute::new("text", "gina white ny tailor")],
    );
    mutated.retract(ProfileId(8));
    mutated.amend(
        ProfileId(0),
        vec![Attribute::new("text", "paul black la baker")],
    );
    if compact_first {
        assert_eq!(mutated.pending_tombstones(), 5);
        assert!(mutated.compact() >= 5);
    }
    let (mut fresh, map) = fresh_twin(&mutated, config);
    let a = map_stream(drain(&mut mutated, budget), &map);
    let b = drain(&mut fresh, budget);
    assert!(!b.is_empty(), "vacuous fixture for {method:?}");
    assert_eq!(
        a, b,
        "{method:?} threads={threads} compacted={compact_first}: \
         mutated stream != never-ingested stream"
    );
}

#[test]
fn delete_equals_never_ingested_lazily_filtered() {
    for method in STREAMABLE {
        assert_delete_equals_never_ingested(method, 1, false, None);
    }
}

#[test]
fn delete_equals_never_ingested_post_compaction() {
    for method in STREAMABLE {
        assert_delete_equals_never_ingested(method, 1, true, None);
    }
}

#[test]
fn delete_equals_never_ingested_budgeted_drains() {
    for method in STREAMABLE {
        for compacted in [false, true] {
            assert_delete_equals_never_ingested(method, 1, compacted, Some(3));
        }
    }
}

#[test]
fn delete_equals_never_ingested_across_thread_counts() {
    for method in STREAMABLE {
        for threads in [2, 4, 8] {
            for compacted in [false, true] {
                assert_delete_equals_never_ingested(method, threads, compacted, Some(7));
            }
        }
    }
}

/// Tier (a) on a Clean-clean task, with retractions in both sources.
#[test]
fn clean_clean_delete_equals_never_ingested() {
    let p1 = [
        "carl white ny tailor",
        "hellen white ml teacher",
        "frank black la baker",
        "emma white wi tailor",
        "joe green sf cook",
    ];
    let p2 = [
        "karl white ny tailor",
        "ellen white ml teacher",
        "frances black la baker",
        "emma white wi taylor",
        "joseph green sf cook",
        "carla white ny tailor",
    ];
    for method in STREAMABLE {
        for compact_first in [false, true] {
            let config =
                SessionConfig::exhaustive(method).with_compaction(CompactionPolicy::manual());
            let mut base = ProfileCollectionBuilder::clean_clean();
            for v in p1 {
                base.add_profile([("text", v)]);
            }
            base.start_second_source();
            let mut mutated = ProgressiveSession::new(base.build(), config.clone());
            mutated.ingest_batch(p2.map(|v| vec![Attribute::new("text", v)]));
            // Retract from the base source and the streamed source, and
            // amend a streamed row (re-ingests into P2, id 11).
            mutated.retract(ProfileId(2));
            mutated.retract(ProfileId(7));
            mutated.amend(
                ProfileId(6),
                vec![Attribute::new("text", "eleanor white ml teacher")],
            );
            if compact_first {
                mutated.compact();
            }
            let (mut fresh, map) = fresh_twin(&mutated, config);
            let a = map_stream(drain(&mut mutated, Some(4)), &map);
            let b = drain(&mut fresh, Some(4));
            assert!(!b.is_empty(), "vacuous fixture for {method:?}");
            assert_eq!(
                a, b,
                "{method:?} (clean-clean, compacted={compact_first}) diverged"
            );
        }
    }
}

/// The API contract `update ≡ delete + re-ingest`, pinned directly: two
/// sessions fed identical prefixes, one calling `amend` and the other
/// spelling it out, stay indistinguishable — same ids, same emissions.
#[test]
fn update_equals_delete_plus_reingest() {
    for method in STREAMABLE {
        let config = SessionConfig::exhaustive(method).with_compaction(CompactionPolicy::manual());
        let build = || {
            let mut s =
                ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config.clone());
            s.ingest_batch(rows(10));
            s.emit_epoch(Some(4));
            s
        };
        let new_text = vec![Attribute::new("text", "gina white ny tailor")];
        let mut amended = build();
        let id_a = amended.amend(ProfileId(4), new_text.clone());
        let mut spelled = build();
        spelled.retract(ProfileId(4));
        let id_b = spelled.ingest(new_text);
        assert_eq!(id_a, id_b, "{method:?}: amend picked a different id");
        assert_eq!(amended.pending_tombstones(), spelled.pending_tombstones());
        let a = drain(&mut amended, Some(3));
        let b = drain(&mut spelled, Some(3));
        assert_eq!(a, b, "{method:?}: amend != delete + re-ingest");
    }
}

/// Tier (b): mutations land *after* emissions have already happened. The
/// post-mutation drain must equal the never-ingested twin's full stream
/// with the already-emitted survivor pairs deleted — same order, same
/// bit-exact weights (the drain re-derives every weight from the
/// post-mutation substrate, which the twin's substrate matches exactly).
#[test]
fn interleaved_mutations_drain_like_a_fresh_session() {
    let all = rows(14);
    for method in STREAMABLE {
        for compact_before_drain in [false, true] {
            let config =
                SessionConfig::exhaustive(method).with_compaction(CompactionPolicy::manual());
            let mut mutated =
                ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config.clone());
            mutated.ingest_batch(all[..8].to_vec());
            mutated.emit_epoch(Some(6));
            mutated.ingest_batch(all[8..].to_vec());
            mutated.retract(ProfileId(1));
            mutated.amend(
                ProfileId(3),
                vec![Attribute::new("text", "gina white ny tailor")],
            );
            mutated.retract(ProfileId(9));
            if compact_before_drain {
                mutated.compact();
            }
            let (mut fresh, map) = fresh_twin(&mutated, config);
            // The dedup filter holds survivor pairs only (retraction
            // invalidated the rest); map it into the twin's id space.
            let already: std::collections::HashSet<Pair> = mutated
                .emitted()
                .iter()
                .map(|p| Pair::new(map[&p.first], map[&p.second]))
                .collect();
            assert!(!already.is_empty(), "fixture emitted nothing pre-mutation");
            let expected: Stream = drain(&mut fresh, Some(5))
                .into_iter()
                .filter(|(p, _)| !already.contains(p))
                .collect();
            let actual = map_stream(drain(&mut mutated, Some(5)), &map);
            assert_eq!(
                actual, expected,
                "{method:?} (compacted={compact_before_drain}): post-mutation drain diverged"
            );
        }
    }
}

proptest! {
    /// Arbitrary collections and mutation schedules, every streamable
    /// method: pre-emission mutations are indistinguishable from never
    /// having ingested the victims, compacted or not.
    #[test]
    fn mutation_schedule_equivalence(
        values in proptest::collection::vec("[a-e ]{1,8}", 4..14),
        method_idx in 0usize..6,
        del_seeds in proptest::collection::vec(0usize..1000, 0..4),
        upd_seeds in proptest::collection::vec(0usize..1000, 0..3),
        compact_coin in 0usize..2,
        budget in 2u64..6,
    ) {
        let compact = compact_coin == 1;
        let method = STREAMABLE[method_idx];
        let config = SessionConfig::exhaustive(method)
            .with_compaction(CompactionPolicy::manual());
        let mut mutated = ProgressiveSession::new(
            ProfileCollectionBuilder::dirty().build(),
            config.clone(),
        );
        mutated.ingest_batch(
            values.iter().map(|v| vec![Attribute::new("t", v.clone())]),
        );
        // Apply the schedule, skipping ids the schedule already killed;
        // amends target the *current* collection, so they can hit rows
        // earlier amends created.
        for seed in del_seeds {
            let id = ProfileId((seed % mutated.profiles().len()) as u32);
            if !mutated.is_retracted(id) {
                mutated.retract(id);
            }
        }
        for seed in upd_seeds {
            let id = ProfileId((seed % mutated.profiles().len()) as u32);
            if !mutated.is_retracted(id) {
                mutated.amend(id, vec![Attribute::new("t", format!("e{} d", seed % 7))]);
            }
        }
        if compact {
            mutated.compact();
            prop_assert_eq!(mutated.pending_tombstones(), 0);
        }
        let (mut fresh, map) = fresh_twin(&mutated, config);
        let a = map_stream(drain(&mut mutated, Some(budget)), &map);
        let b = drain(&mut fresh, Some(budget));
        prop_assert_eq!(a, b);
    }
}

/// Satellite regression for the sparse-accumulator kernel: a long-lived
/// `WeightAccumulator` (the cross-epoch pattern PBS/PPS use) must keep
/// reproducing the merge-based weights bit for bit when the substrate it
/// sweeps is *compacted* between epochs — provided the scratch entries of
/// compacted-away ids are purged. Stale accumulator sums and
/// least-common-block tags for dead ids are exactly what
/// `WeightAccumulator::purge_retired` evicts.
#[test]
fn kernel_scratch_survives_substrate_compaction() {
    use sper_blocking::{WeightAccumulator, WeightingScheme};
    use sper_stream::IncrementalTokenBlocking;

    let all = rows(12);
    let mut live = ProfileCollectionBuilder::dirty().build();
    let mut substrate = IncrementalTokenBlocking::new(ErKind::Dirty);
    let mut acc = WeightAccumulator::new(0);

    let sweep_all = |substrate: &IncrementalTokenBlocking, acc: &mut WeightAccumulator| {
        let n = substrate.n_profiles();
        acc.ensure_profiles(n);
        let index = substrate.profile_index();
        let blocks = substrate.blocks();
        for i in 0..n as u32 {
            let i = ProfileId(i);
            if substrate.is_tombstoned(i) {
                continue;
            }
            for scheme in [WeightingScheme::Arcs, WeightingScheme::Ecbs] {
                acc.sweep(substrate.kind(), blocks, index, scheme, i, None);
                for t in 0..acc.touched().len() {
                    let j = ProfileId(acc.touched()[t]);
                    assert_eq!(
                        acc.finalize(index, scheme, i, j).to_bits(),
                        index.weight(i, j, scheme).to_bits(),
                        "weight diverged at ({i:?}, {j:?}) under {scheme:?}"
                    );
                }
                acc.reset();
            }
        }
    };

    // Epoch 1: ingest and sweep — the scratch is now warm with sums and
    // least-common-block tags for every profile, including the two about
    // to die.
    for attrs in &all[..8] {
        let id = live.append_profile(attrs.clone());
        substrate.add_profile(live.get(id));
    }
    sweep_all(&substrate, &mut acc);

    // Retract two profiles and compact: block ids renumber, and ids 2
    // and 5 vanish from every CSR segment while their scratch entries
    // linger.
    for id in [ProfileId(2), ProfileId(5)] {
        live.retract_profile(id);
        substrate.retract(id);
    }
    assert_eq!(substrate.compact(), 2);
    let retired: Vec<bool> = (0..substrate.n_profiles())
        .map(|i| substrate.is_tombstoned(ProfileId(i as u32)))
        .collect();
    acc.purge_retired(&retired);

    // Epoch 2: grow past the compaction and sweep the live substrate —
    // every surviving weight still bit-matches the merge kernels.
    for attrs in &all[8..] {
        let id = live.append_profile(attrs.clone());
        substrate.add_profile(live.get(id));
    }
    sweep_all(&substrate, &mut acc);

    // Control: a fresh accumulator over the same compacted substrate
    // agrees with the long-lived one on every pair (the purge left no
    // live-entry damage behind).
    let mut fresh = WeightAccumulator::new(substrate.n_profiles());
    let index = substrate.profile_index();
    let blocks = substrate.blocks();
    for i in 0..substrate.n_profiles() as u32 {
        let i = ProfileId(i);
        if substrate.is_tombstoned(i) {
            continue;
        }
        fresh.sweep(
            substrate.kind(),
            blocks,
            index,
            WeightingScheme::Ecbs,
            i,
            None,
        );
        acc.sweep(
            substrate.kind(),
            blocks,
            index,
            WeightingScheme::Ecbs,
            i,
            None,
        );
        let a: Vec<(u32, u64)> = {
            let mut v = Vec::new();
            acc.drain_ascending(|j, sum, _| v.push((j, sum.to_bits())));
            v
        };
        let b: Vec<(u32, u64)> = {
            let mut v = Vec::new();
            fresh.drain_ascending(|j, sum, _| v.push((j, sum.to_bits())));
            v
        };
        assert_eq!(a, b, "long-lived vs fresh scratch diverged sweeping {i:?}");
    }
}
