//! The **cddb** twin: Dirty ER, 9.8 k profiles, 106 attributes, 300
//! matches, 18.75 avg name-value pairs (Table 2).
//!
//! CDDB disc records: artist / title / category / year plus a long, highly
//! variable track list — hence the huge attribute-name count (track01..)
//! and high pairs-per-profile. Duplicates are rare (300 pairs in ~10 k
//! profiles) and noisy, which is why every method needs far more than
//! `ec* = 1` comparisons here (Fig. 9d).

use crate::build::{assemble_dirty, EntityInstance};
use crate::noise::CharNoise;
use crate::plan::plan_clusters;
use crate::vocab::{Vocab, GENRES, SURNAMES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;
use sper_text::soundex;

struct Disc {
    artist: String,
    title: String,
    category: String,
    year: u32,
    tracks: Vec<String>,
}

/// Generates the cddb twin.
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = ((9763.0 * spec.scale).round() as usize).max(4);
    let pairs = ((300.0 * spec.scale).round() as usize).max(1);
    let plan = plan_clusters(n, pairs, 2);

    let artists = Vocab::new(SURNAMES, 2000, &mut rng);
    let words = Vocab::new(&[], 10000, &mut rng);
    let genres = Vocab::new(GENRES, 0, &mut rng);
    let noise = CharNoise::moderate();

    let make = |rng: &mut StdRng| {
        let n_tracks = rng.gen_range(8..=22usize);
        Disc {
            artist: format!("{} {}", words.pick(rng), artists.pick(rng)),
            title: (0..rng.gen_range(1..=3))
                .map(|_| words.pick_skewed(rng).to_string())
                .collect::<Vec<_>>()
                .join(" "),
            category: genres.pick_skewed(rng).to_string(),
            year: rng.gen_range(1960..2005),
            // Track titles draw uniformly from a large vocabulary: real
            // track names are full of rare words, which is what gives
            // duplicate discs their distinctive shared tokens.
            tracks: (0..n_tracks)
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| words.pick(rng).to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect(),
        }
    };

    let instantiate = |d: &Disc, noisy: bool, rng: &mut StdRng| -> Vec<Attribute> {
        let mut attrs = Vec::with_capacity(d.tracks.len() + 4);
        let artist = if noisy {
            noise.apply(&d.artist, rng)
        } else {
            d.artist.clone()
        };
        let title = if noisy {
            noise.apply(&d.title, rng)
        } else {
            d.title.clone()
        };
        attrs.push(Attribute::new("artist", artist));
        attrs.push(Attribute::new("dtitle", title));
        if rng.gen_bool(0.8) {
            attrs.push(Attribute::new("category", d.category.clone()));
        }
        if rng.gen_bool(0.6) {
            attrs.push(Attribute::new("year", d.year.to_string()));
        }
        for (i, track) in d.tracks.iter().enumerate() {
            // A second submission may miss a few tracks or misspell them.
            if noisy && rng.gen_bool(0.08) {
                continue;
            }
            let value = if noisy {
                noise.apply(track, rng)
            } else {
                track.clone()
            };
            attrs.push(Attribute::new(format!("track{:02}", i + 1), value));
        }
        attrs
    };

    let mut instances = Vec::with_capacity(n);
    let mut entity_id = 0usize;
    for &size in &plan.sizes {
        let disc = make(&mut rng);
        for k in 0..size {
            instances.push(EntityInstance {
                entity_id,
                attributes: instantiate(&disc, k > 0, &mut rng),
            });
        }
        entity_id += 1;
    }
    for _ in 0..plan.singletons() {
        let disc = make(&mut rng);
        instances.push(EntityInstance {
            entity_id,
            attributes: instantiate(&disc, false, &mut rng),
        });
        entity_id += 1;
    }

    let (profiles, truth) = assemble_dirty(instances, &mut rng);

    // Literature key: phonetic artist + year.
    let schema_keys: Vec<String> = profiles
        .iter()
        .map(|p| {
            let artist = p.value_of("artist").unwrap_or("");
            let last = artist.split_whitespace().last().unwrap_or("");
            let year = p.value_of("year").unwrap_or("");
            format!("{}{}", soundex(last), year)
        })
        .collect();

    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: Some(schema_keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn twin() -> GeneratedDataset {
        // Scale down for test speed; shape assertions scale along.
        DatasetSpec::paper(DatasetKind::Cddb)
            .with_scale(0.2)
            .generate()
    }

    #[test]
    fn table2_shape_scaled() {
        let d = twin();
        assert_eq!(d.profiles.len(), 1953); // 9763 × 0.2
        assert_eq!(d.truth.num_matches(), 60); // 300 × 0.2
        let attrs = d.profiles.num_attribute_names();
        assert!((20..=110).contains(&attrs), "attr names {attrs}");
        let avg = d.profiles.avg_pairs();
        assert!((14.0..=24.0).contains(&avg), "avg pairs {avg}");
    }

    #[test]
    fn full_scale_attribute_count_close_to_paper() {
        let d = DatasetSpec::paper(DatasetKind::Cddb)
            .with_scale(0.5)
            .generate();
        // 4 header attrs + track01..track22 ≈ 26 names guaranteed; the paper
        // counts 106 because real CDDB has up to ~100 tracks. Our twin keeps
        // the *order of magnitude* of the track-attr mechanism.
        assert!(d.profiles.num_attribute_names() >= 24);
    }

    #[test]
    fn duplicates_are_sparse() {
        let d = twin();
        let dup_profiles: usize = d.truth.clusters().iter().map(Vec::len).sum();
        assert!(dup_profiles * 10 < d.profiles.len(), "duplicates are rare");
    }

    #[test]
    fn deterministic() {
        assert_eq!(twin().profiles.len(), twin().profiles.len());
        assert_eq!(twin().profiles.profiles()[0], twin().profiles.profiles()[0]);
    }
}
