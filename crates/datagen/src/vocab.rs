//! Deterministic vocabularies for the synthetic twins: curated seed lists
//! (for realism) expanded with generated pronounceable words (for volume),
//! all derived from the spec's seed.

use rand::rngs::StdRng;
use rand::Rng;

/// Curated surname seeds (shared across twins; expanded synthetically).
pub const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
];

/// Curated first-name seeds.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "lisa",
    "daniel",
    "nancy",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
    "carl",
    "ellen",
    "emma",
    "hellen",
];

/// Curated city seeds.
pub const CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "chicago",
    "houston",
    "phoenix",
    "philadelphia",
    "san antonio",
    "san diego",
    "dallas",
    "san jose",
    "austin",
    "jacksonville",
    "fort worth",
    "columbus",
    "charlotte",
    "san francisco",
    "indianapolis",
    "seattle",
    "denver",
    "washington",
    "boston",
    "el paso",
    "nashville",
    "detroit",
    "oklahoma city",
    "portland",
    "las vegas",
    "memphis",
    "louisville",
    "baltimore",
    "milwaukee",
    "albuquerque",
    "tucson",
    "fresno",
    "mesa",
];

/// Curated cuisine seeds for the restaurant twin.
pub const CUISINES: &[&str] = &[
    "american",
    "italian",
    "french",
    "chinese",
    "japanese",
    "mexican",
    "thai",
    "indian",
    "steakhouses",
    "seafood",
    "delis",
    "pizza",
    "bbq",
    "cafeterias",
    "continental",
    "greek",
    "vietnamese",
    "spanish",
    "korean",
    "mediterranean",
];

/// Curated venue seeds for the cora twin.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "kdd", "www", "cikm", "edbt", "icml", "nips", "aaai", "ijcai", "acl",
    "emnlp", "sigir", "wsdm", "icdm", "pods", "socc", "sosp", "osdi",
];

/// Curated music-genre seeds for the cddb twin.
pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "blues",
    "classical",
    "country",
    "folk",
    "metal",
    "punk",
    "soul",
    "funk",
    "reggae",
    "electronic",
    "ambient",
    "techno",
    "house",
    "hiphop",
    "rap",
    "latin",
    "world",
    "soundtrack",
    "opera",
    "gospel",
    "disco",
];

/// Curated movie-genre seeds.
pub const MOVIE_GENRES: &[&str] = &[
    "drama",
    "comedy",
    "action",
    "thriller",
    "horror",
    "romance",
    "adventure",
    "crime",
    "fantasy",
    "mystery",
    "western",
    "animation",
    "documentary",
    "musical",
    "war",
    "biography",
];

/// Generates a pronounceable lowercase word of `syllables` consonant-vowel
/// syllables — the synthetic volume behind every vocabulary.
pub fn gen_word(rng: &mut StdRng, syllables: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnprstvz";
    const VOWELS: &[u8] = b"aeiou";
    let mut w = String::with_capacity(syllables * 2 + 1);
    for _ in 0..syllables.max(1) {
        w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        w.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
        if rng.gen_bool(0.25) {
            w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        }
    }
    w
}

/// A vocabulary: curated seeds plus generated words, sampled uniformly.
#[derive(Debug, Clone)]
pub struct Vocab {
    words: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from `seeds` expanded with `extra` generated
    /// words of 2–3 syllables.
    pub fn new(seeds: &[&str], extra: usize, rng: &mut StdRng) -> Self {
        let mut words: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        for _ in 0..extra {
            let syl = rng.gen_range(2..=3);
            words.push(gen_word(rng, syl));
        }
        words.sort_unstable();
        words.dedup();
        Self { words }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Uniform random word.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        &self.words[rng.gen_range(0..self.words.len())]
    }

    /// Zipf-ish skewed pick: squaring the uniform variate favours the head
    /// of the (sorted) vocabulary, creating the frequent/rare token split
    /// Block Purging exploits.
    pub fn pick_skewed<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        let u: f64 = rng.gen::<f64>();
        let idx = ((u * u) * self.words.len() as f64) as usize;
        &self.words[idx.min(self.words.len() - 1)]
    }
}

/// A synthetic US-style zip code.
pub fn gen_zip(rng: &mut StdRng) -> String {
    format!("{:05}", rng.gen_range(10000..99999))
}

/// A synthetic US-style phone number.
pub fn gen_phone(rng: &mut StdRng) -> String {
    format!(
        "{:03}-{:03}-{:04}",
        rng.gen_range(200..999),
        rng.gen_range(200..999),
        rng.gen_range(0..9999)
    )
}

/// A synthetic street address.
pub fn gen_street(rng: &mut StdRng, vocab: &Vocab) -> String {
    let suffix = ["st", "ave", "blvd", "rd", "dr", "ln"][rng.gen_range(0..6)];
    format!("{} {} {}", rng.gen_range(1..9999), vocab.pick(rng), suffix)
}

/// A synthetic Freebase-style opaque machine id (e.g. `m.0q3xz7`).
pub fn gen_mid(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"0123456789bcdfghjklmnpqrstvwxyz_";
    let len = rng.gen_range(5..=7);
    let mut s = String::from("m.0");
    for _ in 0..len {
        s.push(ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn gen_word_is_pronounceable_lowercase() {
        let mut r = rng();
        for _ in 0..50 {
            let w = gen_word(&mut r, 3);
            assert!(w.len() >= 6);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vocab_expansion_and_determinism() {
        let v1 = Vocab::new(SURNAMES, 100, &mut rng());
        let v2 = Vocab::new(SURNAMES, 100, &mut rng());
        assert!(v1.len() >= SURNAMES.len());
        assert_eq!(v1.words, v2.words);
    }

    #[test]
    fn skewed_pick_prefers_the_head() {
        let mut r = rng();
        let v = Vocab::new(&[], 1000, &mut r);
        let mut head = 0;
        for _ in 0..2000 {
            let w = v.pick_skewed(&mut r);
            let idx = v.words.binary_search(&w.to_string()).unwrap();
            if idx < v.len() / 4 {
                head += 1;
            }
        }
        // First quartile should absorb ~50 % of skewed picks (√0.25 = 0.5).
        assert!(head > 700, "head hits: {head}");
    }

    #[test]
    fn formatted_values() {
        let mut r = rng();
        assert_eq!(gen_zip(&mut r).len(), 5);
        let phone = gen_phone(&mut r);
        assert_eq!(phone.len(), 12);
        assert!(gen_mid(&mut r).starts_with("m.0"));
        // City seeds may be multi-word ("new york"), so a street is number
        // + vocabulary pick + suffix = at least three words.
        let v = Vocab::new(CITIES, 0, &mut r);
        assert!(gen_street(&mut r, &v).split(' ').count() >= 3);
    }
}
