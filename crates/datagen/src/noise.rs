//! Noise models: how duplicates differ from their base entity.
//!
//! Structured twins use character-level noise — the curated-data regime the
//! paper attributes to census/restaurant/cora/cddb ("principally containing
//! character-level errors", §8). RDF twins add token-level noise ("both
//! character- and token-level noise", §8): dropped / reordered / replaced
//! tokens and divergent attribute naming.

use rand::rngs::StdRng;
use rand::Rng;

/// Character-level noise intensity and operators.
#[derive(Debug, Clone, Copy)]
pub struct CharNoise {
    /// Probability that a value receives any edit at all.
    pub value_edit_prob: f64,
    /// Number of character edits applied to an edited value (1..=max).
    pub max_edits: usize,
}

impl CharNoise {
    /// Light noise: most duplicate values survive verbatim (census-like).
    pub fn light() -> Self {
        Self {
            value_edit_prob: 0.35,
            max_edits: 1,
        }
    }

    /// Moderate noise (restaurant/cora-like).
    pub fn moderate() -> Self {
        Self {
            value_edit_prob: 0.55,
            max_edits: 2,
        }
    }

    /// Heavy noise (cddb free-text-ish fields).
    pub fn heavy() -> Self {
        Self {
            value_edit_prob: 0.75,
            max_edits: 3,
        }
    }

    /// Applies the noise to `value`, returning a possibly-edited copy.
    pub fn apply(&self, value: &str, rng: &mut StdRng) -> String {
        if value.is_empty() || !rng.gen_bool(self.value_edit_prob) {
            return value.to_string();
        }
        let mut chars: Vec<char> = value.chars().collect();
        let edits = rng.gen_range(1..=self.max_edits);
        for _ in 0..edits {
            apply_one_edit(&mut chars, rng);
        }
        chars.into_iter().collect()
    }
}

/// One random character edit: substitution, deletion, insertion or adjacent
/// transposition — the Damerau operations.
fn apply_one_edit(chars: &mut Vec<char>, rng: &mut StdRng) {
    const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    if chars.is_empty() {
        chars.push(LETTERS[rng.gen_range(0..26)] as char);
        return;
    }
    match rng.gen_range(0..4u8) {
        0 => {
            // substitute
            let i = rng.gen_range(0..chars.len());
            chars[i] = LETTERS[rng.gen_range(0..26)] as char;
        }
        1 => {
            // delete (keep at least one char)
            if chars.len() > 1 {
                let i = rng.gen_range(0..chars.len());
                chars.remove(i);
            }
        }
        2 => {
            // insert
            let i = rng.gen_range(0..=chars.len());
            chars.insert(i, LETTERS[rng.gen_range(0..26)] as char);
        }
        _ => {
            // transpose adjacent
            if chars.len() > 1 {
                let i = rng.gen_range(0..chars.len() - 1);
                chars.swap(i, i + 1);
            }
        }
    }
}

/// Token-level noise for RDF-ish values.
#[derive(Debug, Clone, Copy)]
pub struct TokenNoise {
    /// Probability of dropping each token.
    pub drop_prob: f64,
    /// Probability of shuffling the token order of a value.
    pub shuffle_prob: f64,
}

impl TokenNoise {
    /// Paper-calibrated default for the RDF twins.
    pub fn rdf() -> Self {
        Self {
            drop_prob: 0.2,
            shuffle_prob: 0.3,
        }
    }

    /// Applies the noise to a whitespace-tokenized value.
    pub fn apply(&self, value: &str, rng: &mut StdRng) -> String {
        let mut tokens: Vec<&str> = value.split_whitespace().collect();
        if tokens.len() > 1 {
            tokens.retain(|_| !rng.gen_bool(self.drop_prob));
            if tokens.is_empty() {
                // Never erase the whole value.
                tokens.push(value.split_whitespace().next().unwrap());
            }
            if rng.gen_bool(self.shuffle_prob) {
                use rand::seq::SliceRandom;
                tokens.shuffle(rng);
            }
        }
        tokens.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sper_text::damerau_levenshtein;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn char_noise_bounded_by_max_edits() {
        let noise = CharNoise {
            value_edit_prob: 1.0,
            max_edits: 2,
        };
        let mut r = rng();
        for _ in 0..100 {
            let out = noise.apply("montgomery", &mut r);
            // Each edit is one Damerau operation, but `damerau_levenshtein`
            // implements the OSA variant, which can count an interleaved
            // edit+transposition as up to two operations each — hence the
            // sound bound is 2 per edit, not 1.
            assert!(damerau_levenshtein("montgomery", &out) <= 2 * 2);
        }
    }

    #[test]
    fn zero_prob_is_identity() {
        let noise = CharNoise {
            value_edit_prob: 0.0,
            max_edits: 3,
        };
        let mut r = rng();
        assert_eq!(noise.apply("exactly", &mut r), "exactly");
    }

    #[test]
    fn empty_value_survives() {
        let mut r = rng();
        assert_eq!(CharNoise::heavy().apply("", &mut r), "");
        assert!(!TokenNoise::rdf().apply("single", &mut r).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let noise = CharNoise::moderate();
        let a = noise.apply("reproducible", &mut StdRng::seed_from_u64(5));
        let b = noise.apply("reproducible", &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn token_noise_preserves_some_tokens() {
        let noise = TokenNoise {
            drop_prob: 0.5,
            shuffle_prob: 1.0,
        };
        let mut r = rng();
        for _ in 0..50 {
            let out = noise.apply("alpha beta gamma delta", &mut r);
            assert!(!out.is_empty());
            for tok in out.split_whitespace() {
                assert!(["alpha", "beta", "gamma", "delta"].contains(&tok));
            }
        }
    }

    #[test]
    fn presets_ordered_by_intensity() {
        assert!(CharNoise::light().value_edit_prob < CharNoise::moderate().value_edit_prob);
        assert!(CharNoise::moderate().value_edit_prob < CharNoise::heavy().value_edit_prob);
    }
}
