//! # sper-datagen
//!
//! Synthetic **twins** of the seven benchmark datasets of the paper's
//! evaluation (§7, Table 2). The real datasets (census, restaurant, cora,
//! cddb, movies, dbpedia, freebase) cannot be redistributed; these
//! generators reproduce their *statistical shape* — ER type, profile
//! counts, attribute counts, duplicate density and cluster-size
//! distribution, average name–value pairs — and, crucially, their *noise
//! regime*:
//!
//! * structured twins inject **character-level** noise (typos), the regime
//!   where alphabetical proximity of tokens is informative (similarity
//!   principle, §5.1);
//! * RDF twins inject **token-level** noise and URI-valued attributes whose
//!   alphabetical order is dominated by meaningless prefixes and opaque
//!   machine ids — the regime where only the equality principle survives
//!   (§7.2, freebase discussion).
//!
//! All generation is deterministic given the seed in [`DatasetSpec`].

pub mod build;
pub mod cddb;
pub mod census;
pub mod cora;
pub mod movies;
pub mod noise;
pub mod plan;
pub mod rdf;
pub mod restaurant;
pub mod vocab;

use sper_model::{GroundTruth, ProfileCollection};

/// The seven benchmark datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// US Census sample: Dirty ER, 841 profiles, 5 attributes, 344 matches.
    Census,
    /// Fodor's/Zagat restaurants: Dirty ER, 864 profiles, 112 matches.
    Restaurant,
    /// Cora citations: Dirty ER, 1.3 k profiles, 12 attributes, 17 k matches
    /// (large equivalence clusters).
    Cora,
    /// CDDB discs: Dirty ER, 9.8 k profiles, 106 attributes, 300 matches.
    Cddb,
    /// IMDB–DBpedia movies: Clean-clean ER, 28 k — 23 k profiles, 23 k
    /// matches.
    Movies,
    /// Two DBpedia snapshots (2007 / 2009): Clean-clean ER, RDF, ~25 %
    /// name-value overlap between matching profiles.
    Dbpedia,
    /// Freebase–DBpedia: Clean-clean ER, RDF with opaque machine-id URIs.
    Freebase,
}

impl DatasetKind {
    /// All seven datasets, in Table 2 order.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::Census,
        DatasetKind::Restaurant,
        DatasetKind::Cora,
        DatasetKind::Cddb,
        DatasetKind::Movies,
        DatasetKind::Dbpedia,
        DatasetKind::Freebase,
    ];

    /// The four structured datasets of §7.1.
    pub const STRUCTURED: [DatasetKind; 4] = [
        DatasetKind::Census,
        DatasetKind::Restaurant,
        DatasetKind::Cora,
        DatasetKind::Cddb,
    ];

    /// The three large, heterogeneous datasets of §7.2.
    pub const HETEROGENEOUS: [DatasetKind; 3] = [
        DatasetKind::Movies,
        DatasetKind::Dbpedia,
        DatasetKind::Freebase,
    ];

    /// Dataset name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Census => "census",
            DatasetKind::Restaurant => "restaurant",
            DatasetKind::Cora => "cora",
            DatasetKind::Cddb => "cddb",
            DatasetKind::Movies => "movies",
            DatasetKind::Dbpedia => "dbpedia",
            DatasetKind::Freebase => "freebase",
        }
    }

    /// Whether the twin provides schema-based PSN keys (only the structured
    /// datasets do; the paper notes schema-based methods are inapplicable to
    /// the heterogeneous ones).
    pub fn has_schema_keys(self) -> bool {
        matches!(
            self,
            DatasetKind::Census | DatasetKind::Restaurant | DatasetKind::Cora | DatasetKind::Cddb
        )
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which twin to build.
    pub kind: DatasetKind,
    /// RNG seed — same seed, same dataset.
    pub seed: u64,
    /// Linear size factor. `1.0` reproduces Table 2 for the structured
    /// datasets; the heterogeneous twins define scale 1.0 as a laptop-sized
    /// downscaling of the paper's millions (documented per generator).
    pub scale: f64,
}

impl DatasetSpec {
    /// Table 2 configuration for `kind` with the default seed.
    pub fn paper(kind: DatasetKind) -> Self {
        Self {
            kind,
            seed: 0xC0FFEE ^ kind as u64,
            scale: 1.0,
        }
    }

    /// Adjusts the size factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Adjusts the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> GeneratedDataset {
        match self.kind {
            DatasetKind::Census => census::generate(self),
            DatasetKind::Restaurant => restaurant::generate(self),
            DatasetKind::Cora => cora::generate(self),
            DatasetKind::Cddb => cddb::generate(self),
            DatasetKind::Movies => movies::generate(self),
            DatasetKind::Dbpedia => rdf::generate_dbpedia(self),
            DatasetKind::Freebase => rdf::generate_freebase(self),
        }
    }
}

/// A generated dataset: profiles, ground truth, and (for structured twins)
/// the schema-based PSN blocking keys known from the literature.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Which twin this is.
    pub kind: DatasetKind,
    /// The profile collection (Dirty or Clean-clean).
    pub profiles: ProfileCollection,
    /// The known matches.
    pub truth: GroundTruth,
    /// One schema-based blocking key per profile (structured twins only).
    pub schema_keys: Option<Vec<String>>,
}

impl GeneratedDataset {
    /// Table 2 row for this dataset: (|P| or |P1|—|P2|, #attributes, |DP|,
    /// avg name-value pairs).
    pub fn table2_row(&self) -> String {
        let p = match self.profiles.kind() {
            sper_model::ErKind::Dirty => format!("{}", self.profiles.len()),
            sper_model::ErKind::CleanClean => format!(
                "{}—{}",
                self.profiles.len_first(),
                self.profiles.len_second()
            ),
        };
        format!(
            "{:<11} {:>13} {:>7} {:>9} {:>7.2}",
            self.kind.name(),
            p,
            self.profiles.num_attribute_names(),
            self.truth.num_matches(),
            self.profiles.avg_pairs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_enumerations() {
        assert_eq!(DatasetKind::ALL.len(), 7);
        assert_eq!(DatasetKind::STRUCTURED.len(), 4);
        assert_eq!(DatasetKind::HETEROGENEOUS.len(), 3);
        assert!(DatasetKind::Census.has_schema_keys());
        assert!(!DatasetKind::Freebase.has_schema_keys());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        DatasetSpec::paper(DatasetKind::Census).with_scale(0.0);
    }
}
