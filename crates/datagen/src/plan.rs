//! Cluster planning: decide how many duplicate clusters of which sizes to
//! build so the generated ground truth matches a target pair count |DP|
//! within a profile budget |P| — e.g. cora packs 17 k pairs into 1.3 k
//! profiles with large clusters, while cddb spreads 300 pairs over 9.8 k
//! profiles as plain pairs.

/// A cluster plan: the sizes (≥ 2) of the duplicate clusters to generate.
/// Profiles not covered by any cluster are singletons (no duplicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Duplicate cluster sizes, largest first.
    pub sizes: Vec<usize>,
    /// Total number of profiles (clusters + singletons).
    pub n_profiles: usize,
}

impl ClusterPlan {
    /// Number of duplicate pairs the plan yields: `Σ k·(k−1)/2`.
    pub fn num_pairs(&self) -> usize {
        self.sizes.iter().map(|&k| k * (k - 1) / 2).sum()
    }

    /// Number of profiles covered by clusters.
    pub fn duplicated_profiles(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Number of singleton (non-duplicated) profiles.
    pub fn singletons(&self) -> usize {
        self.n_profiles - self.duplicated_profiles()
    }

    /// Number of distinct base entities (clusters + singletons).
    pub fn num_entities(&self) -> usize {
        self.sizes.len() + self.singletons()
    }
}

/// Greedily plans clusters so that the pair count reaches `target_pairs`
/// (exactly, whenever the budget allows) without exceeding `n_profiles`
/// profiles or `max_cluster` per cluster.
///
/// The greedy choice — the largest feasible cluster first — concentrates
/// pairs in few clusters (cora-like); with `max_cluster = 2` it degenerates
/// to plain duplicate pairs (census/restaurant/cddb-like).
///
/// # Panics
///
/// Panics when `max_cluster < 2`.
pub fn plan_clusters(n_profiles: usize, target_pairs: usize, max_cluster: usize) -> ClusterPlan {
    assert!(max_cluster >= 2, "clusters need at least two profiles");
    let mut sizes = Vec::new();
    let mut pairs_left = target_pairs;
    let mut profiles_left = n_profiles;
    while pairs_left > 0 && profiles_left >= 2 {
        // Largest k ≤ max_cluster with C(k,2) ≤ pairs_left and k ≤ budget.
        let mut k = max_cluster.min(profiles_left);
        while k > 2 && k * (k - 1) / 2 > pairs_left {
            k -= 1;
        }
        if k * (k - 1) / 2 > pairs_left {
            // Even a pair overshoots (pairs_left == 0 handled above, so this
            // means pairs_left == 1 and k == 2 fits; unreachable otherwise).
            break;
        }
        sizes.push(k);
        pairs_left -= k * (k - 1) / 2;
        profiles_left -= k;
    }
    ClusterPlan { sizes, n_profiles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_pair_targets() {
        // census-like: 841 profiles, 344 pairs, small clusters.
        let plan = plan_clusters(841, 344, 3);
        assert_eq!(plan.num_pairs(), 344);
        assert!(plan.duplicated_profiles() <= 841);
        assert!(plan.sizes.iter().all(|&k| (2..=3).contains(&k)));
    }

    #[test]
    fn pairs_only_plan() {
        let plan = plan_clusters(9763, 300, 2);
        assert_eq!(plan.sizes, vec![2; 300]);
        assert_eq!(plan.num_pairs(), 300);
        assert_eq!(plan.singletons(), 9763 - 600);
    }

    #[test]
    fn cora_like_large_clusters() {
        let plan = plan_clusters(1300, 17000, 30);
        assert_eq!(plan.num_pairs(), 17000);
        assert!(plan.duplicated_profiles() <= 1300);
        assert_eq!(*plan.sizes.first().unwrap(), 30);
        // Plenty of singletons remain possible but pairs hit exactly.
    }

    #[test]
    fn profile_budget_respected() {
        // Tiny budget: can't reach the target; uses what it has.
        let plan = plan_clusters(5, 1000, 10);
        assert!(plan.duplicated_profiles() <= 5);
        assert_eq!(plan.num_pairs(), 10); // C(5,2)
    }

    #[test]
    fn zero_pairs_means_no_clusters() {
        let plan = plan_clusters(100, 0, 5);
        assert!(plan.sizes.is_empty());
        assert_eq!(plan.singletons(), 100);
        assert_eq!(plan.num_entities(), 100);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn max_cluster_one_panics() {
        plan_clusters(10, 5, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The plan never exceeds the profile budget, never overshoots the
        /// pair target, and hits it exactly when the budget suffices.
        #[test]
        fn plan_invariants(
            n in 2usize..2000,
            target in 0usize..5000,
            max_cluster in 2usize..40,
        ) {
            let plan = plan_clusters(n, target, max_cluster);
            prop_assert!(plan.duplicated_profiles() <= n);
            prop_assert!(plan.num_pairs() <= target);
            prop_assert!(plan.sizes.iter().all(|&k| k >= 2 && k <= max_cluster));
            // The greedy only stops short of the target when it runs out of
            // profiles: whenever at least two singletons remain, the pair
            // count must be exact.
            if plan.singletons() >= 2 {
                prop_assert_eq!(plan.num_pairs(), target);
            }
        }
    }
}
