//! The **census** twin: Dirty ER, 841 profiles, 5 attributes, 344 matches,
//! 4.65 avg name-value pairs (Table 2).
//!
//! Census records have short, highly discriminative values (surname + zip),
//! which is why schema-based PSN performs unusually well here (§7.1) — the
//! twin preserves that: light character noise, one-token values, and the
//! literature PSN key (footnote 6: Soundex of the surname concatenated to
//! the initials and the zip code).

use crate::build::{assemble_dirty, EntityInstance};
use crate::noise::CharNoise;
use crate::plan::plan_clusters;
use crate::vocab::{Vocab, CITIES, FIRST_NAMES, SURNAMES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;
use sper_text::soundex;

/// Base census entity.
struct Person {
    surname: String,
    name: String,
    middle_initial: char,
    zip: String,
    city: String,
}

/// Generates the census twin.
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = ((841.0 * spec.scale).round() as usize).max(4);
    let pairs = ((344.0 * spec.scale).round() as usize).max(1);
    let plan = plan_clusters(n, pairs, 3);

    let surnames = Vocab::new(SURNAMES, 400, &mut rng);
    let firsts = Vocab::new(FIRST_NAMES, 200, &mut rng);
    let cities = Vocab::new(CITIES, 30, &mut rng);
    // Zip codes come from a modest pool: a census enumeration covers a
    // bounded set of districts, so a zip is shared by a handful of
    // households — discriminative mostly in *combination* with the surname,
    // which is what keeps the schema-based PSN key competitive here (§7.1).
    let zips: Vec<String> = (0..150).map(|_| crate::vocab::gen_zip(&mut rng)).collect();
    let noise = CharNoise::light();

    let mut instances: Vec<EntityInstance> = Vec::with_capacity(n);
    let mut entity_id = 0usize;
    let make_person = |rng: &mut StdRng| Person {
        surname: surnames.pick(rng).to_string(),
        name: firsts.pick(rng).to_string(),
        middle_initial: (b'a' + rng.gen_range(0..26u8)) as char,
        zip: zips[rng.gen_range(0..zips.len())].clone(),
        city: cities.pick(rng).to_string(),
    };

    let instantiate = |p: &Person, noisy: bool, rng: &mut StdRng| -> Vec<Attribute> {
        let mut attrs = Vec::with_capacity(5);
        let surname = if noisy {
            noise.apply(&p.surname, rng)
        } else {
            p.surname.clone()
        };
        let name = if noisy {
            noise.apply(&p.name, rng)
        } else {
            p.name.clone()
        };
        attrs.push(Attribute::new("SURNAME", surname));
        attrs.push(Attribute::new("NAME", name));
        // The MI column is often empty in the real census sample — this is
        // what pushes the average pairs below 5 (4.65).
        if rng.gen_bool(0.75) {
            attrs.push(Attribute::new("MI", p.middle_initial.to_string()));
        }
        attrs.push(Attribute::new("ZIP", p.zip.clone()));
        if rng.gen_bool(0.9) {
            attrs.push(Attribute::new("CITY", p.city.clone()));
        }
        attrs
    };

    for &size in &plan.sizes {
        let person = make_person(&mut rng);
        // First instance is the clean record; the rest carry noise.
        for k in 0..size {
            instances.push(EntityInstance {
                entity_id,
                attributes: instantiate(&person, k > 0, &mut rng),
            });
        }
        entity_id += 1;
    }
    for _ in 0..plan.singletons() {
        let person = make_person(&mut rng);
        instances.push(EntityInstance {
            entity_id,
            attributes: instantiate(&person, false, &mut rng),
        });
        entity_id += 1;
    }

    let (profiles, truth) = assemble_dirty(instances, &mut rng);

    // Footnote 6: Soundex(surname) + initials + zip.
    let schema_keys: Vec<String> = profiles
        .iter()
        .map(|p| {
            let surname = p.value_of("SURNAME").unwrap_or("");
            let name = p.value_of("NAME").unwrap_or("");
            let zip = p.value_of("ZIP").unwrap_or("");
            let initials: String = name.chars().take(2).collect();
            format!("{}{}{}", soundex(surname), initials, zip)
        })
        .collect();

    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: Some(schema_keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn twin() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Census).generate()
    }

    #[test]
    fn table2_shape() {
        let d = twin();
        assert_eq!(d.profiles.len(), 841);
        assert_eq!(d.truth.num_matches(), 344);
        assert_eq!(d.profiles.num_attribute_names(), 5);
        let avg = d.profiles.avg_pairs();
        assert!((4.3..=5.0).contains(&avg), "avg pairs {avg}");
        assert_eq!(d.truth.validate(&d.profiles), 0);
    }

    #[test]
    fn deterministic() {
        let a = twin();
        let b = twin();
        assert_eq!(a.profiles.profiles(), b.profiles.profiles());
        assert_eq!(a.schema_keys, b.schema_keys);
    }

    #[test]
    fn schema_keys_are_discriminative() {
        // Most duplicate pairs share their key (the clean copy vs the noisy
        // one may diverge after a surname typo, but zip is never edited).
        let d = twin();
        let keys = d.schema_keys.as_ref().unwrap();
        let sharing = d
            .truth
            .pairs()
            .filter(|p| keys[p.first.index()] == keys[p.second.index()])
            .count();
        assert!(
            sharing * 2 > d.truth.num_matches(),
            "only {sharing}/{} duplicate pairs share their PSN key",
            d.truth.num_matches()
        );
    }

    #[test]
    fn scaling() {
        let d = DatasetSpec::paper(DatasetKind::Census)
            .with_scale(0.5)
            .generate();
        assert!(
            (380..=462).contains(&d.profiles.len()),
            "{}",
            d.profiles.len()
        );
        assert_eq!(d.truth.num_matches(), 172);
    }

    #[test]
    fn duplicates_share_zip() {
        let d = twin();
        let share = d
            .truth
            .pairs()
            .filter(|p| {
                d.profiles.get(p.first).value_of("ZIP") == d.profiles.get(p.second).value_of("ZIP")
            })
            .count();
        assert_eq!(share, d.truth.num_matches(), "zip is never noised");
    }
}
