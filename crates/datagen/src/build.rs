//! Assembly helpers shared by the dataset generators: turn entity instances
//! into a shuffled [`ProfileCollection`] plus its [`GroundTruth`].
//!
//! Shuffling matters: without it duplicates would occupy adjacent profile
//! ids (generation order), which would leak ground truth into any
//! id-ordered tie-break downstream.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sper_model::{Attribute, GroundTruth, ProfileCollection, ProfileCollectionBuilder, ProfileId};

/// One profile-to-be: its attributes and the id of the real-world entity it
/// describes. Instances sharing an `entity_id` are duplicates.
#[derive(Debug, Clone)]
pub struct EntityInstance {
    /// Identifier of the underlying real-world entity.
    pub entity_id: usize,
    /// The instance's attribute pairs.
    pub attributes: Vec<Attribute>,
}

/// Assembles a Dirty-ER collection from instances, shuffling profile order.
pub fn assemble_dirty(
    mut instances: Vec<EntityInstance>,
    rng: &mut StdRng,
) -> (ProfileCollection, GroundTruth) {
    instances.shuffle(rng);
    let n = instances.len();
    let mut builder = ProfileCollectionBuilder::dirty();
    let mut by_entity: std::collections::HashMap<usize, Vec<ProfileId>> =
        std::collections::HashMap::new();
    for inst in instances {
        let pid = builder.add_attributes(inst.attributes);
        by_entity.entry(inst.entity_id).or_default().push(pid);
    }
    let clusters: Vec<Vec<ProfileId>> = by_entity.into_values().filter(|c| c.len() >= 2).collect();
    let truth = GroundTruth::from_clusters(n, &clusters);
    (builder.build(), truth)
}

/// Assembles a Clean-clean-ER collection: `first` becomes `P1`, `second`
/// becomes `P2` (each shuffled); instances sharing an `entity_id` across
/// the sources are matches.
///
/// # Panics
///
/// Panics when either source contains two instances of the same entity —
/// Clean-clean sources are duplicate-free by definition.
pub fn assemble_clean_clean(
    mut first: Vec<EntityInstance>,
    mut second: Vec<EntityInstance>,
    rng: &mut StdRng,
) -> (ProfileCollection, GroundTruth) {
    for (name, source) in [("P1", &first), ("P2", &second)] {
        let mut seen = std::collections::HashSet::new();
        for inst in source.iter() {
            assert!(
                seen.insert(inst.entity_id),
                "{name} must be duplicate-free (entity {} repeated)",
                inst.entity_id
            );
        }
    }
    first.shuffle(rng);
    second.shuffle(rng);
    let n = first.len() + second.len();

    let mut builder = ProfileCollectionBuilder::clean_clean();
    let mut p1_of_entity: std::collections::HashMap<usize, ProfileId> =
        std::collections::HashMap::new();
    for inst in first {
        let pid = builder.add_attributes(inst.attributes);
        p1_of_entity.insert(inst.entity_id, pid);
    }
    builder.start_second_source();
    let mut clusters: Vec<Vec<ProfileId>> = Vec::new();
    for inst in second {
        let pid = builder.add_attributes(inst.attributes);
        if let Some(&p1) = p1_of_entity.get(&inst.entity_id) {
            clusters.push(vec![p1, pid]);
        }
    }
    let truth = GroundTruth::from_clusters(n, &clusters);
    (builder.build(), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn inst(entity: usize, val: &str) -> EntityInstance {
        EntityInstance {
            entity_id: entity,
            attributes: vec![Attribute::new("v", val)],
        }
    }

    #[test]
    fn dirty_assembly_builds_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let (coll, truth) = assemble_dirty(
            vec![inst(0, "a"), inst(0, "a2"), inst(1, "b"), inst(2, "c")],
            &mut rng,
        );
        assert_eq!(coll.len(), 4);
        assert_eq!(truth.num_matches(), 1);
        assert_eq!(truth.validate(&coll), 0);
    }

    #[test]
    fn dirty_duplicates_not_id_adjacent_in_general() {
        // With 200 pairs and shuffling, at least some duplicate pairs must
        // be separated by other profiles.
        let mut rng = StdRng::seed_from_u64(2);
        let mut instances = Vec::new();
        for e in 0..200 {
            instances.push(inst(e, "x"));
            instances.push(inst(e, "y"));
        }
        let (_, truth) = assemble_dirty(instances, &mut rng);
        let non_adjacent = truth.pairs().filter(|p| p.second.0 - p.first.0 > 1).count();
        assert!(non_adjacent > 100, "shuffle broke: {non_adjacent}");
    }

    #[test]
    fn clean_clean_assembly_matches_across_sources() {
        let mut rng = StdRng::seed_from_u64(3);
        let (coll, truth) = assemble_clean_clean(
            vec![inst(0, "a"), inst(1, "b"), inst(2, "c")],
            vec![inst(0, "a'"), inst(2, "c'"), inst(9, "z")],
            &mut rng,
        );
        assert_eq!(coll.len_first(), 3);
        assert_eq!(coll.len_second(), 3);
        assert_eq!(truth.num_matches(), 2);
        assert_eq!(truth.validate(&coll), 0);
        assert!(truth.clean_sources_are_duplicate_free(&coll));
    }

    #[test]
    #[should_panic(expected = "duplicate-free")]
    fn clean_clean_rejects_in_source_duplicates() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = assemble_clean_clean(
            vec![inst(0, "a"), inst(0, "a-again")],
            vec![inst(0, "b")],
            &mut rng,
        );
    }
}
