//! The **restaurant** twin: Dirty ER, 864 profiles, 5 attributes, 112
//! matches, 5.0 avg name-value pairs (Table 2).
//!
//! The real dataset merges Fodor's and Zagat listings; duplicates are the
//! same restaurant described twice with moderate formatting drift. High
//! token overlap between duplicates and non-discriminative attributes
//! (city, cuisine) — the regime where the paper's advanced methods crush
//! PSN (PPS reaches AUC*@1 = 0.93, §7.1).

use crate::build::{assemble_dirty, EntityInstance};
use crate::noise::CharNoise;
use crate::plan::plan_clusters;
use crate::vocab::{gen_phone, gen_street, Vocab, CITIES, CUISINES, SURNAMES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;
use sper_text::soundex;

struct Restaurant {
    name: String,
    address: String,
    city: String,
    phone: String,
    cuisine: String,
}

/// Generates the restaurant twin.
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = ((864.0 * spec.scale).round() as usize).max(4);
    let pairs = ((112.0 * spec.scale).round() as usize).max(1);
    let plan = plan_clusters(n, pairs, 2);

    let words = Vocab::new(SURNAMES, 500, &mut rng);
    let cities = Vocab::new(CITIES, 10, &mut rng);
    let cuisines = Vocab::new(CUISINES, 0, &mut rng);
    let noise = CharNoise::moderate();

    let make = |rng: &mut StdRng| {
        let name = match rng.gen_range(0..3u8) {
            0 => format!("{}'s {}", words.pick(rng), cuisines.pick(rng)),
            1 => format!("cafe {}", words.pick(rng)),
            _ => format!(
                "{} {}",
                words.pick(rng),
                ["grill", "bistro", "kitchen", "house"][rng.gen_range(0..4)]
            ),
        };
        Restaurant {
            name,
            address: gen_street(rng, &words),
            city: cities.pick(rng).to_string(),
            phone: gen_phone(rng),
            cuisine: cuisines.pick_skewed(rng).to_string(),
        }
    };

    let instantiate = |r: &Restaurant, noisy: bool, rng: &mut StdRng| -> Vec<Attribute> {
        let name = if noisy {
            noise.apply(&r.name, rng)
        } else {
            r.name.clone()
        };
        let address = if noisy {
            noise.apply(&r.address, rng)
        } else {
            r.address.clone()
        };
        // Second listings often reformat the phone (dots vs dashes).
        let phone = if noisy && rng.gen_bool(0.5) {
            r.phone.replace('-', ".")
        } else {
            r.phone.clone()
        };
        // Cuisine labels disagree between guides ~30 % of the time — a
        // non-discriminative attribute by design.
        let cuisine = if noisy && rng.gen_bool(0.3) {
            "international".to_string()
        } else {
            r.cuisine.clone()
        };
        vec![
            Attribute::new("name", name),
            Attribute::new("addr", address),
            Attribute::new("city", r.city.clone()),
            Attribute::new("phone", phone),
            Attribute::new("type", cuisine),
        ]
    };

    let mut instances = Vec::with_capacity(n);
    let mut entity_id = 0usize;
    for &size in &plan.sizes {
        let r = make(&mut rng);
        for k in 0..size {
            instances.push(EntityInstance {
                entity_id,
                attributes: instantiate(&r, k > 0, &mut rng),
            });
        }
        entity_id += 1;
    }
    for _ in 0..plan.singletons() {
        let r = make(&mut rng);
        instances.push(EntityInstance {
            entity_id,
            attributes: instantiate(&r, false, &mut rng),
        });
        entity_id += 1;
    }

    let (profiles, truth) = assemble_dirty(instances, &mut rng);

    // Literature key: phonetic name + city prefix.
    let schema_keys: Vec<String> = profiles
        .iter()
        .map(|p| {
            let name = p.value_of("name").unwrap_or("");
            let city = p.value_of("city").unwrap_or("");
            let first_word = name.split_whitespace().next().unwrap_or("");
            let city3: String = city.chars().take(3).collect();
            format!("{}{}", soundex(first_word), city3)
        })
        .collect();

    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: Some(schema_keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn twin() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Restaurant).generate()
    }

    #[test]
    fn table2_shape() {
        let d = twin();
        assert_eq!(d.profiles.len(), 864);
        assert_eq!(d.truth.num_matches(), 112);
        assert_eq!(d.profiles.num_attribute_names(), 5);
        assert!((d.profiles.avg_pairs() - 5.0).abs() < 1e-9);
        assert_eq!(d.truth.validate(&d.profiles), 0);
    }

    #[test]
    fn duplicates_are_pairs_only() {
        let d = twin();
        for cluster in d.truth.clusters() {
            assert_eq!(cluster.len(), 2);
        }
    }

    #[test]
    fn duplicates_share_city_token() {
        let d = twin();
        let share = d
            .truth
            .pairs()
            .filter(|p| {
                d.profiles.get(p.first).value_of("city")
                    == d.profiles.get(p.second).value_of("city")
            })
            .count();
        assert_eq!(share, d.truth.num_matches());
    }

    #[test]
    fn deterministic() {
        assert_eq!(twin().profiles.profiles(), twin().profiles.profiles());
    }
}
