//! The **movies** twin: Clean-clean ER between an IMDB-style source
//! (4 attributes) and a DBpedia-style source (7 attributes); paper scale is
//! 27 615 — 23 182 profiles with 22 863 matches (Table 2).
//!
//! Nearly every `P2` movie has an `P1` counterpart. Titles overlap heavily
//! at the token level while the schemata are disjoint — the canonical
//! schema-agnostic Clean-clean task.

use crate::build::{assemble_clean_clean, EntityInstance};
use crate::noise::CharNoise;
use crate::vocab::{Vocab, FIRST_NAMES, MOVIE_GENRES, SURNAMES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;

struct Movie {
    title: Vec<String>,
    year: u32,
    director: String,
    genre: String,
    starring: Vec<String>,
    runtime: u32,
}

/// Generates the movies twin. Scale 1.0 reproduces Table 2
/// (27 615 — 23 182, 22 863 matches).
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let matches = ((22863.0 * spec.scale).round() as usize).max(1);
    let p1_only = ((4752.0 * spec.scale).round() as usize).max(1);
    let p2_only = ((319.0 * spec.scale).round() as usize).max(1);

    let title_words = Vocab::new(&[], 4000, &mut rng);
    let people_first = Vocab::new(FIRST_NAMES, 500, &mut rng);
    let people_last = Vocab::new(SURNAMES, 1500, &mut rng);
    let genres = Vocab::new(MOVIE_GENRES, 0, &mut rng);
    let noise = CharNoise::light();

    let person = |rng: &mut StdRng| format!("{} {}", people_first.pick(rng), people_last.pick(rng));
    let make = |rng: &mut StdRng| Movie {
        title: (0..rng.gen_range(1..=4))
            .map(|_| title_words.pick_skewed(rng).to_string())
            .collect(),
        year: rng.gen_range(1950..2010),
        director: person(rng),
        genre: genres.pick_skewed(rng).to_string(),
        starring: {
            let k = rng.gen_range(2..=3);
            (0..k).map(|_| person(rng)).collect()
        },
        runtime: rng.gen_range(70..210),
    };

    // IMDB-style instance: 4 attributes.
    let imdb = |m: &Movie, rng: &mut StdRng| -> Vec<Attribute> {
        let _ = rng;
        vec![
            Attribute::new("title", m.title.join(" ")),
            Attribute::new("year", m.year.to_string()),
            Attribute::new("director", m.director.clone()),
            Attribute::new("genre", m.genre.clone()),
        ]
    };
    // DBpedia-style instance: 7 attributes, lightly drifted values.
    let dbp = |m: &Movie, rng: &mut StdRng| -> Vec<Attribute> {
        let mut title = noise.apply(&m.title.join(" "), rng);
        if rng.gen_bool(0.3) {
            title.push_str(" film");
        }
        vec![
            Attribute::new("name", title),
            Attribute::new("released", format!("{}-01-01", m.year)),
            Attribute::new("director", noise.apply(&m.director, rng)),
            Attribute::new("starring", m.starring.join(", ")),
            Attribute::new("runtime", m.runtime.to_string()),
            Attribute::new("genre", m.genre.clone()),
            Attribute::new("label", format!("{} {}", m.title.join(" "), m.year)),
        ]
    };

    let mut first = Vec::with_capacity(matches + p1_only);
    let mut second = Vec::with_capacity(matches + p2_only);
    let mut entity_id = 0usize;
    for _ in 0..matches {
        let m = make(&mut rng);
        first.push(EntityInstance {
            entity_id,
            attributes: imdb(&m, &mut rng),
        });
        second.push(EntityInstance {
            entity_id,
            attributes: dbp(&m, &mut rng),
        });
        entity_id += 1;
    }
    for _ in 0..p1_only {
        let m = make(&mut rng);
        first.push(EntityInstance {
            entity_id,
            attributes: imdb(&m, &mut rng),
        });
        entity_id += 1;
    }
    for _ in 0..p2_only {
        let m = make(&mut rng);
        second.push(EntityInstance {
            entity_id,
            attributes: dbp(&m, &mut rng),
        });
        entity_id += 1;
    }

    let (profiles, truth) = assemble_clean_clean(first, second, &mut rng);
    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: None, // schema-based methods inapplicable (§7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;
    use sper_model::ErKind;

    fn twin() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Movies)
            .with_scale(0.05)
            .generate()
    }

    #[test]
    fn table2_shape_scaled() {
        let d = twin();
        assert_eq!(d.profiles.kind(), ErKind::CleanClean);
        assert_eq!(d.profiles.len_first(), 1143 + 238); // matches + p1_only
        assert_eq!(d.profiles.len_second(), 1143 + 16);
        assert_eq!(d.truth.num_matches(), 1143);
        assert_eq!(d.truth.validate(&d.profiles), 0);
        assert!(d.truth.clean_sources_are_duplicate_free(&d.profiles));
    }

    #[test]
    fn disjoint_schemata() {
        let d = twin();
        // 4 + 7 names, sharing only "genre" and "director" → 9 distinct.
        assert_eq!(d.profiles.num_attribute_names(), 9);
        let p1 = &d.profiles.profiles()[0];
        assert!(p1.num_pairs() == 4 || p1.num_pairs() == 7);
    }

    #[test]
    fn no_schema_keys() {
        assert!(twin().schema_keys.is_none());
    }

    #[test]
    fn matching_movies_share_title_tokens() {
        use sper_text::Tokenizer;
        let d = twin();
        let t = Tokenizer::default();
        let mut share = 0;
        let mut total = 0;
        for p in d.truth.pairs().take(300) {
            let a = d.profiles.get(p.first).token_set(&t);
            let b = d.profiles.get(p.second).token_set(&t);
            let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            total += 1;
            if inter >= 2 {
                share += 1;
            }
        }
        assert!(share * 10 >= total * 9, "{share}/{total}");
    }
}
