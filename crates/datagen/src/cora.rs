//! The **cora** twin: Dirty ER, 1.3 k profiles, 12 attributes, 17 k matches,
//! 5.53 avg name-value pairs (Table 2).
//!
//! Cora is a bibliographic dataset: the same paper cited dozens of times
//! with wildly varying completeness — hence the *large equivalence clusters*
//! (17 k pairs from 1.3 k profiles) and the low average pair count despite
//! 12 possible attributes. Citations of the same paper overlap heavily in
//! title/author tokens, which is why the schema-agnostic similarity methods
//! shine here (Fig. 9c).

use crate::build::{assemble_dirty, EntityInstance};
use crate::noise::CharNoise;
use crate::plan::plan_clusters;
use crate::vocab::{Vocab, SURNAMES, VENUES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;

struct Paper {
    authors: Vec<String>,
    title: Vec<String>,
    venue: String,
    year: u32,
    pages: String,
    volume: u32,
    publisher: String,
    address: String,
    editor: String,
    month: &'static str,
    note: String,
    tech: String,
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Generates the cora twin.
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = ((1300.0 * spec.scale).round() as usize).max(6);
    let pairs = ((17000.0 * spec.scale).round() as usize).max(1);
    let plan = plan_clusters(n, pairs, 30);

    let authors_vocab = Vocab::new(SURNAMES, 300, &mut rng);
    let title_vocab = Vocab::new(&[], 900, &mut rng);
    let venues = Vocab::new(VENUES, 40, &mut rng);
    let publishers = Vocab::new(
        &["springer", "acm", "ieee", "elsevier", "mit"],
        20,
        &mut rng,
    );
    let noise = CharNoise::moderate();

    let make = |rng: &mut StdRng| Paper {
        authors: (0..rng.gen_range(1..=4))
            .map(|_| authors_vocab.pick(rng).to_string())
            .collect(),
        title: (0..rng.gen_range(4..=8))
            .map(|_| title_vocab.pick_skewed(rng).to_string())
            .collect(),
        venue: venues.pick(rng).to_string(),
        year: rng.gen_range(1985..2005),
        pages: format!("{}--{}", rng.gen_range(1..400), rng.gen_range(400..800)),
        volume: rng.gen_range(1..40),
        publisher: publishers.pick(rng).to_string(),
        address: "new york".to_string(),
        editor: authors_vocab.pick(rng).to_string(),
        month: MONTHS[rng.gen_range(0..12)],
        note: "technical report".to_string(),
        tech: format!("tr-{}", rng.gen_range(1..999)),
    };

    // A citation instance: authors/title/year are (nearly) always present;
    // the other nine attributes appear sporadically — this yields 12
    // distinct attribute names but only ~5.5 pairs per profile.
    let instantiate = |p: &Paper, noisy: bool, rng: &mut StdRng| -> Vec<Attribute> {
        let mut attrs: Vec<Attribute> = Vec::with_capacity(7);
        let mut authors = p.authors.join(" and ");
        let mut title = p.title.join(" ");
        if noisy {
            authors = noise.apply(&authors, rng);
            title = noise.apply(&title, rng);
            // Citations frequently truncate the author list.
            if rng.gen_bool(0.25) && p.authors.len() > 1 {
                authors = format!("{} et al", p.authors[0]);
            }
        }
        attrs.push(Attribute::new("author", authors));
        attrs.push(Attribute::new("title", title));
        if rng.gen_bool(0.9) {
            attrs.push(Attribute::new("year", p.year.to_string()));
        }
        if rng.gen_bool(0.65) {
            attrs.push(Attribute::new("venue", p.venue.clone()));
        }
        if rng.gen_bool(0.35) {
            attrs.push(Attribute::new("pages", p.pages.clone()));
        }
        if rng.gen_bool(0.3) {
            attrs.push(Attribute::new("volume", p.volume.to_string()));
        }
        if rng.gen_bool(0.25) {
            attrs.push(Attribute::new("publisher", p.publisher.clone()));
        }
        if rng.gen_bool(0.15) {
            attrs.push(Attribute::new("address", p.address.clone()));
        }
        if rng.gen_bool(0.12) {
            attrs.push(Attribute::new("editor", p.editor.clone()));
        }
        if rng.gen_bool(0.15) {
            attrs.push(Attribute::new("month", p.month.to_string()));
        }
        if rng.gen_bool(0.08) {
            attrs.push(Attribute::new("note", p.note.clone()));
        }
        if rng.gen_bool(0.08) {
            attrs.push(Attribute::new("tech", p.tech.clone()));
        }
        attrs
    };

    let mut instances = Vec::with_capacity(n);
    let mut entity_id = 0usize;
    for &size in &plan.sizes {
        let paper = make(&mut rng);
        for k in 0..size {
            instances.push(EntityInstance {
                entity_id,
                attributes: instantiate(&paper, k > 0, &mut rng),
            });
        }
        entity_id += 1;
    }
    for _ in 0..plan.singletons() {
        let paper = make(&mut rng);
        instances.push(EntityInstance {
            entity_id,
            attributes: instantiate(&paper, false, &mut rng),
        });
        entity_id += 1;
    }

    let (profiles, truth) = assemble_dirty(instances, &mut rng);

    // Literature key: first author surname + year.
    let schema_keys: Vec<String> = profiles
        .iter()
        .map(|p| {
            let author = p.value_of("author").unwrap_or("");
            let first = author.split_whitespace().next().unwrap_or("");
            let year = p.value_of("year").unwrap_or("0");
            format!("{first}{year}")
        })
        .collect();

    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: Some(schema_keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn twin() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Cora).generate()
    }

    #[test]
    fn table2_shape() {
        let d = twin();
        assert_eq!(d.profiles.len(), 1300);
        assert_eq!(d.truth.num_matches(), 17000);
        assert_eq!(d.profiles.num_attribute_names(), 12);
        let avg = d.profiles.avg_pairs();
        assert!((4.8..=6.2).contains(&avg), "avg pairs {avg}");
    }

    #[test]
    fn has_large_clusters() {
        let d = twin();
        let max = d.truth.clusters().iter().map(Vec::len).max().unwrap();
        assert_eq!(max, 30, "cora packs pairs into big clusters");
    }

    #[test]
    fn duplicates_overlap_in_title_tokens() {
        use sper_text::Tokenizer;
        let d = twin();
        let t = Tokenizer::default();
        let mut overlapping = 0usize;
        let mut total = 0usize;
        for p in d.truth.pairs().take(500) {
            let a = d.profiles.get(p.first).token_set(&t);
            let b = d.profiles.get(p.second).token_set(&t);
            let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            total += 1;
            if inter >= 3 {
                overlapping += 1;
            }
        }
        assert!(
            overlapping * 10 >= total * 8,
            "duplicates should share ≥3 tokens: {overlapping}/{total}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(twin().truth.num_matches(), twin().truth.num_matches());
    }
}
