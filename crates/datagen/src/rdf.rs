//! The RDF twins: **dbpedia** (two snapshots of the same KB, 2007 vs 2009)
//! and **freebase** (Freebase vs DBpedia), both Clean-clean ER.
//!
//! Paper scale is millions of profiles (Table 2); scale 1.0 here is a
//! laptop-sized downscaling (documented per generator) that preserves the
//! mechanisms the evaluation hinges on:
//!
//! * **dbpedia** — matching profiles share only ~25 % of their name-value
//!   pairs (paper footnote 2): predicates get renamed between snapshots and
//!   values drift at the token level. Local names of URIs remain readable,
//!   so similarity-based methods still work, just worse than PPS
//!   (Fig. 11b).
//! * **freebase** — the Freebase side is dominated by opaque machine-id
//!   URIs (`m.0…`) that exist only in that source: they flood the Neighbor
//!   List with meaningless placements (similarity methods degrade to
//!   SA-PSN level, Fig. 11c) while Token Blocking structurally ignores
//!   them (single-source blocks), keeping the equality-based methods
//!   robust.

use crate::build::{assemble_clean_clean, EntityInstance};
use crate::noise::{CharNoise, TokenNoise};
use crate::vocab::{gen_mid, Vocab, MOVIE_GENRES, SURNAMES};
use crate::{DatasetSpec, GeneratedDataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use sper_model::Attribute;

/// A knowledge-base entity shared by both sides of a Clean-clean RDF task.
struct KbEntity {
    /// Readable name words (the cross-source matching signal).
    name: Vec<String>,
    /// Category/type word.
    kind: String,
    /// Readable related-resource local names.
    links: Vec<String>,
    /// A year-ish literal.
    year: u32,
}

fn resource_uri(base: &str, words: &[String]) -> String {
    format!("{base}/resource/{}", words.join("_"))
}

fn make_entity(
    rng: &mut StdRng,
    names: &Vocab,
    kinds: &Vocab,
    link_pool: &Vocab,
    n_links: std::ops::RangeInclusive<usize>,
) -> KbEntity {
    KbEntity {
        name: (0..rng.gen_range(2..=3))
            .map(|_| names.pick(rng).to_string())
            .collect(),
        kind: kinds.pick_skewed(rng).to_string(),
        links: {
            let k = rng.gen_range(n_links);
            (0..k).map(|_| link_pool.pick(rng).to_string()).collect()
        },
        year: rng.gen_range(1900..2010),
    }
}

/// One DBpedia-style instance of `e`. `snapshot` switches the predicate
/// namespace (schema drift between 2007 and 2009); `keep_prob` is the
/// fraction of optional pairs retained, and token noise drifts the values —
/// together these push the cross-snapshot name-value overlap down to ~25 %.
fn dbpedia_instance(
    e: &KbEntity,
    snapshot: u8,
    keep_prob: f64,
    rng: &mut StdRng,
    char_noise: &CharNoise,
    token_noise: &TokenNoise,
) -> Vec<Attribute> {
    let ns = if snapshot == 0 {
        "http://dbpedia.org/property"
    } else {
        "http://dbpedia.org/ontology"
    };
    let mut attrs = Vec::with_capacity(e.links.len() + 5);
    let label = char_noise.apply(&e.name.join(" "), rng);
    attrs.push(Attribute::new(
        "http://www.w3.org/2000/01/rdf-schema#label",
        label,
    ));
    attrs.push(Attribute::new(
        format!("{ns}/name"),
        token_noise.apply(&e.name.join(" "), rng),
    ));
    if rng.gen_bool(keep_prob) {
        attrs.push(Attribute::new(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            format!("http://dbpedia.org/ontology/{}", e.kind),
        ));
    }
    if rng.gen_bool(keep_prob) {
        attrs.push(Attribute::new(format!("{ns}/year"), e.year.to_string()));
    }
    for link in &e.links {
        if !rng.gen_bool(keep_prob) {
            continue;
        }
        // Each snapshot names the linking predicate differently.
        let pred = format!(
            "{ns}/{}",
            if snapshot == 0 { "wikilink" } else { "related" }
        );
        attrs.push(Attribute::new(
            pred,
            resource_uri("http://dbpedia.org", std::slice::from_ref(link)),
        ));
    }
    attrs
}

/// Generates the **dbpedia** twin. Scale 1.0 = 12 000 — 22 000 profiles
/// with 8 930 matches (a 1:100 downscaling of the paper's 1.2 M — 2.2 M /
/// 893 k).
pub fn generate_dbpedia(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let matches = ((8930.0 * spec.scale).round() as usize).max(1);
    let p1_only = ((3070.0 * spec.scale).round() as usize).max(1);
    let p2_only = ((13070.0 * spec.scale).round() as usize).max(1);

    let names = Vocab::new(SURNAMES, 6000, &mut rng);
    let kinds = Vocab::new(MOVIE_GENRES, 60, &mut rng);
    let link_pool = Vocab::new(&[], 4000, &mut rng);
    let char_noise = CharNoise::light();
    let token_noise = TokenNoise::rdf();

    let mut first = Vec::new();
    let mut second = Vec::new();
    let mut entity_id = 0usize;
    let push_pairs = |n: usize,
                      both: bool,
                      into_first: bool,
                      first: &mut Vec<EntityInstance>,
                      second: &mut Vec<EntityInstance>,
                      rng: &mut StdRng,
                      entity_id: &mut usize| {
        for _ in 0..n {
            let e = make_entity(rng, &names, &kinds, &link_pool, 6..=14);
            if both || into_first {
                first.push(EntityInstance {
                    entity_id: *entity_id,
                    attributes: dbpedia_instance(&e, 0, 0.55, rng, &char_noise, &token_noise),
                });
            }
            if both || !into_first {
                second.push(EntityInstance {
                    entity_id: *entity_id,
                    attributes: dbpedia_instance(&e, 1, 0.55, rng, &char_noise, &token_noise),
                });
            }
            *entity_id += 1;
        }
    };
    push_pairs(
        matches,
        true,
        true,
        &mut first,
        &mut second,
        &mut rng,
        &mut entity_id,
    );
    push_pairs(
        p1_only,
        false,
        true,
        &mut first,
        &mut second,
        &mut rng,
        &mut entity_id,
    );
    push_pairs(
        p2_only,
        false,
        false,
        &mut first,
        &mut second,
        &mut rng,
        &mut entity_id,
    );

    let (profiles, truth) = assemble_clean_clean(first, second, &mut rng);
    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: None,
    }
}

/// Generates the **freebase** twin. Scale 1.0 = 21 000 — 18 500 profiles
/// with 7 500 matches (a 1:200 downscaling of the paper's 4.2 M — 3.7 M /
/// 1.5 M).
pub fn generate_freebase(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let matches = ((7500.0 * spec.scale).round() as usize).max(1);
    let p1_only = ((13500.0 * spec.scale).round() as usize).max(1);
    let p2_only = ((11000.0 * spec.scale).round() as usize).max(1);

    let names = Vocab::new(SURNAMES, 6000, &mut rng);
    let kinds = Vocab::new(MOVIE_GENRES, 60, &mut rng);
    let link_pool = Vocab::new(&[], 4000, &mut rng);
    let char_noise = CharNoise::moderate();
    let token_noise = TokenNoise::rdf();

    // Freebase-side instance: a couple of readable literals buried under a
    // pile of opaque machine-id links that exist only in this source.
    let freebase_instance = |e: &KbEntity, rng: &mut StdRng| -> Vec<Attribute> {
        let mut attrs = Vec::new();
        attrs.push(Attribute::new(
            "http://rdf.freebase.com/ns/type.object.name",
            token_noise.apply(&char_noise.apply(&e.name.join(" "), rng), rng),
        ));
        attrs.push(Attribute::new(
            "http://rdf.freebase.com/ns/type.object.type",
            format!("http://rdf.freebase.com/ns/common.topic.{}", e.kind),
        ));
        // ~20 machine-id links: meaningless alphabetically, single-source.
        let n_mids = rng.gen_range(16..=24);
        for i in 0..n_mids {
            attrs.push(Attribute::new(
                format!("http://rdf.freebase.com/ns/link.{:02}", i % 12),
                format!("http://rdf.freebase.com/ns/{}", gen_mid(rng)),
            ));
        }
        attrs
    };

    let mut first = Vec::new();
    let mut second = Vec::new();
    for (entity_id, i) in (0..(matches + p1_only + p2_only)).enumerate() {
        let e = make_entity(&mut rng, &names, &kinds, &link_pool, 4..=10);
        let in_first = i < matches + p1_only;
        let in_second = i < matches || i >= matches + p1_only;
        if in_first {
            first.push(EntityInstance {
                entity_id,
                attributes: freebase_instance(&e, &mut rng),
            });
        }
        if in_second {
            second.push(EntityInstance {
                entity_id,
                attributes: dbpedia_instance(&e, 1, 0.6, &mut rng, &char_noise, &token_noise),
            });
        }
    }

    let (profiles, truth) = assemble_clean_clean(first, second, &mut rng);
    GeneratedDataset {
        kind: spec.kind,
        profiles,
        truth,
        schema_keys: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;
    use sper_model::ErKind;

    fn dbp() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Dbpedia)
            .with_scale(0.05)
            .generate()
    }

    fn fb() -> GeneratedDataset {
        DatasetSpec::paper(DatasetKind::Freebase)
            .with_scale(0.05)
            .generate()
    }

    #[test]
    fn dbpedia_shape() {
        let d = dbp();
        assert_eq!(d.profiles.kind(), ErKind::CleanClean);
        assert_eq!(d.truth.num_matches(), 447); // 8930 × 0.05 rounded
        assert!(d.profiles.len_second() > d.profiles.len_first());
        assert_eq!(d.truth.validate(&d.profiles), 0);
    }

    #[test]
    fn dbpedia_low_pair_overlap() {
        // Footnote 2: the two snapshots share only ~25 % of name-value
        // pairs. Measure exact (name, value) overlap on matching profiles.
        let d = dbp();
        let mut ratios = Vec::new();
        for p in d.truth.pairs().take(200) {
            let a: std::collections::HashSet<(String, String)> = d
                .profiles
                .get(p.first)
                .attributes
                .iter()
                .map(|x| (x.name.clone(), x.value.clone()))
                .collect();
            let b: std::collections::HashSet<(String, String)> = d
                .profiles
                .get(p.second)
                .attributes
                .iter()
                .map(|x| (x.name.clone(), x.value.clone()))
                .collect();
            let inter = a.intersection(&b).count();
            let union = a.len() + b.len() - inter;
            ratios.push(inter as f64 / union as f64);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 0.35, "pair overlap should be low: {mean:.3}");
    }

    #[test]
    fn freebase_shape() {
        let d = fb();
        assert_eq!(d.truth.num_matches(), 375); // 7500 × 0.05
        assert_eq!(d.truth.validate(&d.profiles), 0);
        // Freebase side is pair-heavy (~20+ attrs).
        let p1_avg: f64 = {
            let firsts: Vec<_> = d
                .profiles
                .iter()
                .filter(|p| p.source == sper_model::SourceId::FIRST)
                .collect();
            firsts.iter().map(|p| p.num_pairs()).sum::<usize>() as f64 / firsts.len() as f64
        };
        assert!(p1_avg > 15.0, "freebase avg pairs {p1_avg}");
    }

    #[test]
    fn freebase_mids_are_single_source() {
        // The machine-id tokens must never appear on the DBpedia side —
        // that asymmetry is the whole point of the twin.
        let d = fb();
        for p in d.profiles.iter() {
            if p.source == sper_model::SourceId::SECOND {
                for a in &p.attributes {
                    assert!(!a.value.contains("/ns/m.0"), "mid leaked to P2: {a:?}");
                }
            }
        }
    }

    #[test]
    fn freebase_matching_profiles_share_name_tokens() {
        use sper_text::Tokenizer;
        let d = fb();
        let t = Tokenizer::default();
        let mut share = 0;
        let mut total = 0;
        for p in d.truth.pairs().take(200) {
            let a = d.profiles.get(p.first).token_set(&t);
            let b = d.profiles.get(p.second).token_set(&t);
            let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            total += 1;
            // Shared: name tokens + URI prefixes (http, org...).
            if inter >= 3 {
                share += 1;
            }
        }
        assert!(share * 2 >= total, "{share}/{total} pairs share tokens");
    }

    #[test]
    fn deterministic() {
        assert_eq!(dbp().profiles.len(), dbp().profiles.len());
        assert_eq!(fb().truth.num_matches(), fb().truth.num_matches());
    }
}
