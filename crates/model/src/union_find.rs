//! Disjoint-set forest used to maintain ground-truth equivalence clusters.

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements into clusters of size ≥ `min_size`, each sorted
    /// ascending; clusters ordered by their smallest element.
    pub fn clusters(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.find(x);
            by_root[r].push(x);
        }
        by_root.retain(|c| c.len() >= min_size.max(1));
        by_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.clusters(1).len(), 3);
        assert_eq!(uf.clusters(2).len(), 0);
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let clusters = uf.clusters(2);
        assert_eq!(clusters, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn cluster_ordering() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(0, 2);
        let clusters = uf.clusters(2);
        assert_eq!(clusters, vec![vec![0, 2], vec![4, 5]]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After arbitrary unions, `connected` is an equivalence relation and
        /// cluster sizes sum to n.
        #[test]
        fn equivalence_relation(
            n in 1usize..40,
            edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in edges {
                if a < n && b < n {
                    uf.union(a, b);
                }
            }
            let clusters = uf.clusters(1);
            let total: usize = clusters.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
            // Within a cluster everything is connected; across clusters not.
            for c in &clusters {
                for w in c.windows(2) {
                    prop_assert!(uf.connected(w[0], w[1]));
                }
            }
            for pair in clusters.windows(2) {
                prop_assert!(!uf.connected(pair[0][0], pair[1][0]));
            }
        }
    }
}
