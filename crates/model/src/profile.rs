//! Entity profiles and profile collections.

use serde::{Deserialize, Serialize};
use sper_text::Tokenizer;

/// Identifier of a profile inside a [`ProfileCollection`].
///
/// Ids are dense (`0..n`), which lets every index in the workspace be a flat
/// `Vec` instead of a hash map — the compact-integer idiom the blocking
/// substrate relies on (§5.1.1, §5.2.1 of the paper prescribe array-backed
/// indexes for exactly this reason). The layout is `repr(transparent)`
/// over `u32` so id slices can be reinterpreted as raw `u32` lanes by the
/// SIMD weighting kernels without a copy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct ProfileId(pub u32);

impl ProfileId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProfileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a data source. Dirty ER uses a single source `SourceId(0)`;
/// Clean-clean ER uses `SourceId(0)` for `P1` and `SourceId(1)` for `P2`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SourceId(pub u8);

impl SourceId {
    /// First collection (`P1`).
    pub const FIRST: SourceId = SourceId(0);
    /// Second collection (`P2`) in Clean-clean ER.
    pub const SECOND: SourceId = SourceId(1);
}

/// One attribute name–value pair of a profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (may be an RDF predicate URI, a column name, or a
    /// synthetic name for extracted text).
    pub name: String,
    /// Attribute value.
    pub value: String,
}

impl Attribute {
    /// Creates a new attribute pair.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// An entity profile: a uniquely identified set of attribute name–value
/// pairs (§3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Dense id within the collection.
    pub id: ProfileId,
    /// Which source the profile comes from.
    pub source: SourceId,
    /// The name–value pairs describing the entity.
    pub attributes: Vec<Attribute>,
}

impl Profile {
    /// Creates a profile.
    pub fn new(id: ProfileId, source: SourceId, attributes: Vec<Attribute>) -> Self {
        Self {
            id,
            source,
            attributes,
        }
    }

    /// Number of name–value pairs (the paper's `|p̄|` statistic averages
    /// this across a collection).
    pub fn num_pairs(&self) -> usize {
        self.attributes.len()
    }

    /// All attribute-value tokens of the profile, in attribute order, using
    /// `tokenizer`. These are the schema-agnostic blocking keys.
    pub fn tokens(&self, tokenizer: &Tokenizer) -> Vec<String> {
        let mut out = Vec::new();
        for attr in &self.attributes {
            tokenizer.tokenize_into(&attr.value, &mut out);
        }
        out
    }

    /// Distinct, sorted attribute-value tokens — the token *set* used by the
    /// Jaccard match function.
    pub fn token_set(&self, tokenizer: &Tokenizer) -> Vec<String> {
        let mut toks = self.tokens(tokenizer);
        toks.sort_unstable();
        toks.dedup();
        toks
    }

    /// Concatenation of all attribute values separated by single spaces —
    /// the string representation compared by the edit-distance match
    /// function.
    pub fn concat_values(&self) -> String {
        let mut out = String::new();
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&attr.value);
        }
        out
    }

    /// Returns the first value of the attribute called `name`, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }
}

/// Whether an ER task is Dirty (one source, duplicates within) or
/// Clean-clean (two duplicate-free sources, matches across) — §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErKind {
    /// A single profile collection that contains duplicates in itself.
    Dirty,
    /// Two duplicate-free but overlapping collections; every match pairs a
    /// `P1` profile with a `P2` profile.
    CleanClean,
}

impl ErKind {
    /// Stable wire code of the kind — the persistence format
    /// (`sper-store`) stores this byte; codes are append-only and never
    /// reassigned.
    pub fn code(self) -> u8 {
        match self {
            ErKind::Dirty => 0,
            ErKind::CleanClean => 1,
        }
    }

    /// The kind with the given wire code, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ErKind::Dirty),
            1 => Some(ErKind::CleanClean),
            _ => None,
        }
    }
}

/// The input of an ER task: the profiles plus the task kind.
///
/// Invariants (enforced by [`ProfileCollectionBuilder`]):
/// * profile ids are dense `0..n` in storage order;
/// * Dirty collections only contain `SourceId::FIRST`;
/// * Clean-clean collections contain both sources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileCollection {
    kind: ErKind,
    profiles: Vec<Profile>,
    /// Number of profiles with `SourceId::FIRST` (equals `len` for Dirty).
    n_first: usize,
}

impl ProfileCollection {
    /// The ER task kind.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Total number of profiles, `|P|` (or `|P1| + |P2|`).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the collection holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Number of profiles in `P1`.
    pub fn len_first(&self) -> usize {
        self.n_first
    }

    /// Number of profiles in `P2` (0 for Dirty ER).
    pub fn len_second(&self) -> usize {
        self.profiles.len() - self.n_first
    }

    /// The profile with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn get(&self, id: ProfileId) -> &Profile {
        &self.profiles[id.index()]
    }

    /// Iterates all profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Profile> {
        self.profiles.iter()
    }

    /// The backing slice of profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Source of a profile by id.
    #[inline]
    pub fn source_of(&self, id: ProfileId) -> SourceId {
        self.profiles[id.index()].source
    }

    /// Whether `a` and `b` constitute a *valid* comparison for this task:
    /// distinct profiles, and (for Clean-clean) from different sources.
    #[inline]
    pub fn is_valid_comparison(&self, a: ProfileId, b: ProfileId) -> bool {
        if a == b {
            return false;
        }
        match self.kind {
            ErKind::Dirty => true,
            ErKind::CleanClean => self.source_of(a) != self.source_of(b),
        }
    }

    /// Average number of name–value pairs per profile (`|p̄|`, Table 2).
    pub fn avg_pairs(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        let total: usize = self.profiles.iter().map(Profile::num_pairs).sum();
        total as f64 / self.profiles.len() as f64
    }

    /// Number of distinct attribute names across the collection.
    pub fn num_attribute_names(&self) -> usize {
        let mut names: Vec<&str> = self
            .profiles
            .iter()
            .flat_map(|p| p.attributes.iter().map(|a| a.name.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Appends a profile to a live collection — the streaming ingest path
    /// (`sper-stream`). The profile joins the single source of a Dirty
    /// task, or `P2` of a Clean-clean task (the indexed base `P1` is fixed
    /// at build time; new traffic arrives as the second source). Ids stay
    /// dense: the new profile gets the next id.
    pub fn append_profile(&mut self, attributes: Vec<Attribute>) -> ProfileId {
        let id = ProfileId(self.profiles.len() as u32);
        let source = match self.kind {
            ErKind::Dirty => SourceId::FIRST,
            ErKind::CleanClean => SourceId::SECOND,
        };
        if self.kind == ErKind::Dirty {
            self.n_first += 1;
        }
        self.profiles.push(Profile::new(id, source, attributes));
        id
    }

    /// Retracts a profile in place, clearing its attributes and returning
    /// them — the deletion path of the mutation model (`sper-stream`).
    ///
    /// The id is **not** recycled and the slot is **not** removed: dense
    /// ids are load-bearing across every array-backed index in the
    /// workspace, so a retracted profile stays behind as an attribute-less
    /// *husk* that no tokenizer can produce blocking keys for. Epoch
    /// rebuilds that start from the collection (SA-PSAB's suffix forest)
    /// therefore skip it without any extra bookkeeping, and `n_first` /
    /// source assignments stay untouched.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn retract_profile(&mut self, id: ProfileId) -> Vec<Attribute> {
        std::mem::take(&mut self.profiles[id.index()].attributes)
    }

    /// True when the profile holds no attributes — either never had any or
    /// was cleared by [`Self::retract_profile`].
    pub fn is_husk(&self, id: ProfileId) -> bool {
        self.profiles[id.index()].attributes.is_empty()
    }

    /// Total number of comparisons of the naïve (blocking-free) solution:
    /// `n·(n−1)/2` for Dirty, `|P1|·|P2|` for Clean-clean.
    pub fn naive_comparisons(&self) -> u64 {
        match self.kind {
            ErKind::Dirty => {
                let n = self.profiles.len() as u64;
                n * n.saturating_sub(1) / 2
            }
            ErKind::CleanClean => self.n_first as u64 * self.len_second() as u64,
        }
    }
}

impl std::ops::Index<ProfileId> for ProfileCollection {
    type Output = Profile;

    fn index(&self, id: ProfileId) -> &Profile {
        self.get(id)
    }
}

/// Builder enforcing the [`ProfileCollection`] invariants.
///
/// ```
/// use sper_model::ProfileCollectionBuilder;
/// let mut b = ProfileCollectionBuilder::clean_clean();
/// let p1 = b.add_profile([("name", "Carl White")]);
/// b.start_second_source();
/// let p2 = b.add_profile([("fullname", "Karl White")]);
/// let coll = b.build();
/// assert!(coll.is_valid_comparison(p1, p2));
/// ```
#[derive(Debug, Clone)]
pub struct ProfileCollectionBuilder {
    kind: ErKind,
    profiles: Vec<Profile>,
    current_source: SourceId,
    n_first: usize,
    second_started: bool,
}

impl ProfileCollectionBuilder {
    /// Starts a Dirty-ER collection (a single source).
    pub fn dirty() -> Self {
        Self {
            kind: ErKind::Dirty,
            profiles: Vec::new(),
            current_source: SourceId::FIRST,
            n_first: 0,
            second_started: false,
        }
    }

    /// Starts a Clean-clean-ER collection; profiles added before
    /// [`Self::start_second_source`] belong to `P1`, the rest to `P2`.
    pub fn clean_clean() -> Self {
        Self {
            kind: ErKind::CleanClean,
            ..Self::dirty()
        }
    }

    /// Switches to the second source (`P2`).
    ///
    /// # Panics
    ///
    /// Panics on Dirty builders or when called twice.
    pub fn start_second_source(&mut self) {
        assert_eq!(
            self.kind,
            ErKind::CleanClean,
            "Dirty ER has a single source"
        );
        assert!(!self.second_started, "second source already started");
        self.second_started = true;
        self.n_first = self.profiles.len();
        self.current_source = SourceId::SECOND;
    }

    /// Adds a profile built from `(name, value)` pairs and returns its id.
    pub fn add_profile<N, V>(&mut self, attrs: impl IntoIterator<Item = (N, V)>) -> ProfileId
    where
        N: Into<String>,
        V: Into<String>,
    {
        let id = ProfileId(self.profiles.len() as u32);
        let attributes = attrs
            .into_iter()
            .map(|(n, v)| Attribute::new(n, v))
            .collect();
        self.profiles
            .push(Profile::new(id, self.current_source, attributes));
        id
    }

    /// Adds an already-assembled attribute list.
    pub fn add_attributes(&mut self, attributes: Vec<Attribute>) -> ProfileId {
        let id = ProfileId(self.profiles.len() as u32);
        self.profiles
            .push(Profile::new(id, self.current_source, attributes));
        id
    }

    /// Number of profiles added so far.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no profile has been added yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Finalizes the collection.
    ///
    /// # Panics
    ///
    /// Panics when a Clean-clean builder never started its second source.
    pub fn build(self) -> ProfileCollection {
        let n_first = match self.kind {
            ErKind::Dirty => self.profiles.len(),
            ErKind::CleanClean => {
                assert!(
                    self.second_started,
                    "Clean-clean ER requires two sources; call start_second_source()"
                );
                self.n_first
            }
        };
        ProfileCollection {
            kind: self.kind,
            profiles: self.profiles,
            n_first,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_text::Tokenizer;

    fn sample_dirty() -> ProfileCollection {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("Name", "Carl"), ("Surname", "White")]);
        b.add_profile([("name", "Karl White")]);
        b.add_profile([("text", "Emma White, WI Tailor")]);
        b.build()
    }

    #[test]
    fn ids_are_dense() {
        let coll = sample_dirty();
        for (i, p) in coll.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }

    #[test]
    fn dirty_comparisons_valid_between_distinct() {
        let coll = sample_dirty();
        assert!(coll.is_valid_comparison(ProfileId(0), ProfileId(1)));
        assert!(!coll.is_valid_comparison(ProfileId(1), ProfileId(1)));
    }

    #[test]
    fn clean_clean_requires_cross_source() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        let a = b.add_profile([("n", "x")]);
        let b2 = b.add_profile([("n", "y")]);
        b.start_second_source();
        let c = b.add_profile([("n", "z")]);
        let coll = b.build();
        assert!(!coll.is_valid_comparison(a, b2));
        assert!(coll.is_valid_comparison(a, c));
        assert_eq!(coll.len_first(), 2);
        assert_eq!(coll.len_second(), 1);
        assert_eq!(coll.naive_comparisons(), 2);
    }

    #[test]
    #[should_panic(expected = "requires two sources")]
    fn clean_clean_without_second_source_panics() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("n", "x")]);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "single source")]
    fn dirty_second_source_panics() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.start_second_source();
    }

    #[test]
    fn profile_tokens_and_concat() {
        let coll = sample_dirty();
        let t = Tokenizer::default();
        assert_eq!(coll.get(ProfileId(0)).tokens(&t), vec!["carl", "white"]);
        assert_eq!(coll.get(ProfileId(0)).concat_values(), "Carl White");
        assert_eq!(
            coll.get(ProfileId(2)).token_set(&t),
            vec!["emma", "tailor", "white", "wi"]
        );
    }

    #[test]
    fn stats() {
        let coll = sample_dirty();
        assert_eq!(coll.len(), 3);
        assert!((coll.avg_pairs() - 4.0 / 3.0).abs() < 1e-12);
        // Name, Surname, name, text → 4 distinct names (case-sensitive:
        // schema-agnostic ER does not assume aligned attribute names).
        assert_eq!(coll.num_attribute_names(), 4);
        assert_eq!(coll.naive_comparisons(), 3);
    }

    #[test]
    fn append_profile_keeps_ids_dense() {
        let mut coll = sample_dirty();
        let id = coll.append_profile(vec![Attribute::new("name", "Late Arrival")]);
        assert_eq!(id, ProfileId(3));
        assert_eq!(coll.len(), 4);
        assert_eq!(coll.len_first(), 4);
        assert_eq!(coll.source_of(id), SourceId::FIRST);
        assert!(coll.is_valid_comparison(ProfileId(0), id));
    }

    #[test]
    fn append_profile_clean_clean_joins_second_source() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        let a = b.add_profile([("n", "x")]);
        b.start_second_source();
        b.add_profile([("n", "y")]);
        let mut coll = b.build();
        let late = coll.append_profile(vec![Attribute::new("n", "z")]);
        assert_eq!(coll.source_of(late), SourceId::SECOND);
        assert_eq!(coll.len_first(), 1);
        assert_eq!(coll.len_second(), 2);
        assert!(coll.is_valid_comparison(a, late));
    }

    #[test]
    fn retract_leaves_a_husk_with_a_stable_id() {
        let mut coll = sample_dirty();
        let old = coll.retract_profile(ProfileId(1));
        assert_eq!(old, vec![Attribute::new("name", "Karl White")]);
        assert!(coll.is_husk(ProfileId(1)));
        assert!(!coll.is_husk(ProfileId(0)));
        // The slot survives: ids stay dense, sources and n_first untouched.
        assert_eq!(coll.len(), 3);
        assert_eq!(coll.len_first(), 3);
        assert_eq!(coll.get(ProfileId(1)).id, ProfileId(1));
        assert!(coll
            .get(ProfileId(1))
            .tokens(&Tokenizer::default())
            .is_empty());
        // Re-ingest lands on a fresh id, never the husk's.
        let re = coll.append_profile(vec![Attribute::new("name", "Karl White")]);
        assert_eq!(re, ProfileId(3));
    }

    #[test]
    fn value_of() {
        let coll = sample_dirty();
        assert_eq!(coll.get(ProfileId(0)).value_of("Name"), Some("Carl"));
        assert_eq!(coll.get(ProfileId(0)).value_of("missing"), None);
    }
}
