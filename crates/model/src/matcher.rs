//! Match functions (§7.3).
//!
//! Progressive methods are decoupled from the match function: they only
//! decide the *order* of comparisons; a [`MatchFunction`] decides whether an
//! emitted pair actually matches. The paper evaluates with an expensive
//! function (edit distance, `O(s·t)`) and a cheap one (Jaccard, `O(s+t)`),
//! plus the implicit oracle (ground truth) for recall curves.

use crate::ground_truth::GroundTruth;
use crate::profile::{Profile, ProfileCollection, ProfileId};
use sper_text::{jaccard_similarity_sorted, levenshtein, Tokenizer};

/// Pre-extracted textual representations of every profile, shared by the
/// string-based matchers so the `O(s·t)` / `O(s+t)` costs measured in the
/// timing experiments are pure comparison costs (as in the paper, where
/// profile strings exist up front).
#[derive(Debug, Clone)]
pub struct ProfileText {
    /// Concatenated attribute values per profile.
    pub concat: Vec<String>,
    /// Sorted, deduplicated token set per profile.
    pub token_sets: Vec<Vec<String>>,
}

impl ProfileText {
    /// Extracts texts for all profiles of `collection`.
    pub fn extract(collection: &ProfileCollection) -> Self {
        let tokenizer = Tokenizer::default();
        let mut concat = Vec::with_capacity(collection.len());
        let mut token_sets = Vec::with_capacity(collection.len());
        for p in collection.iter() {
            concat.push(p.concat_values());
            token_sets.push(p.token_set(&tokenizer));
        }
        Self { concat, token_sets }
    }
}

/// A binary match function over profile pairs.
pub trait MatchFunction {
    /// Decides whether the two profiles match.
    fn matches(&self, a: ProfileId, b: ProfileId) -> bool;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// Oracle matcher: answers from the ground truth. Used for recall-
/// progressiveness experiments where we only care how early true matches
/// are emitted.
#[derive(Debug, Clone)]
pub struct OracleMatcher<'a> {
    truth: &'a GroundTruth,
}

impl<'a> OracleMatcher<'a> {
    /// Wraps a ground truth.
    pub fn new(truth: &'a GroundTruth) -> Self {
        Self { truth }
    }
}

impl MatchFunction for OracleMatcher<'_> {
    #[inline]
    fn matches(&self, a: ProfileId, b: ProfileId) -> bool {
        self.truth.is_match(a, b)
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The expensive match function: normalized edit distance over concatenated
/// values, `O(s·t)` per comparison.
#[derive(Debug)]
pub struct EditDistanceMatcher<'a> {
    text: &'a ProfileText,
    /// Similarity threshold in `\[0, 1\]`; `≥ threshold` is a match.
    pub threshold: f64,
}

impl<'a> EditDistanceMatcher<'a> {
    /// Creates the matcher with the given similarity threshold.
    pub fn new(text: &'a ProfileText, threshold: f64) -> Self {
        Self { text, threshold }
    }

    /// Raw similarity in `\[0, 1\]` between two profiles.
    pub fn similarity(&self, a: ProfileId, b: ProfileId) -> f64 {
        let sa = &self.text.concat[a.index()];
        let sb = &self.text.concat[b.index()];
        let max = sa.chars().count().max(sb.chars().count());
        if max == 0 {
            return 1.0;
        }
        1.0 - levenshtein(sa, sb) as f64 / max as f64
    }
}

impl MatchFunction for EditDistanceMatcher<'_> {
    fn matches(&self, a: ProfileId, b: ProfileId) -> bool {
        self.similarity(a, b) >= self.threshold
    }

    fn name(&self) -> &'static str {
        "edit-distance"
    }
}

/// The cheap match function: Jaccard similarity of token sets, `O(s+t)` per
/// comparison thanks to pre-sorted token sets.
#[derive(Debug)]
pub struct JaccardMatcher<'a> {
    text: &'a ProfileText,
    /// Similarity threshold in `\[0, 1\]`; `≥ threshold` is a match.
    pub threshold: f64,
}

impl<'a> JaccardMatcher<'a> {
    /// Creates the matcher with the given similarity threshold.
    pub fn new(text: &'a ProfileText, threshold: f64) -> Self {
        Self { text, threshold }
    }

    /// Raw similarity in `\[0, 1\]` between two profiles.
    pub fn similarity(&self, a: ProfileId, b: ProfileId) -> f64 {
        jaccard_similarity_sorted(
            &self.text.token_sets[a.index()],
            &self.text.token_sets[b.index()],
        )
    }
}

impl MatchFunction for JaccardMatcher<'_> {
    fn matches(&self, a: ProfileId, b: ProfileId) -> bool {
        self.similarity(a, b) >= self.threshold
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Convenience: extract text and apply a matcher to two loose profiles,
/// bypassing collections (used in doctests and examples).
pub fn profile_jaccard(a: &Profile, b: &Profile) -> f64 {
    let tokenizer = Tokenizer::default();
    jaccard_similarity_sorted(&a.token_set(&tokenizer), &b.token_set(&tokenizer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::Pair;
    use crate::profile::ProfileCollectionBuilder;

    fn fixture() -> (ProfileCollection, GroundTruth) {
        let mut b = ProfileCollectionBuilder::dirty();
        let a = b.add_profile([("name", "Carl White"), ("job", "tailor")]);
        let c = b.add_profile([("fullname", "Karl White"), ("prof", "tailor")]);
        let d = b.add_profile([("title", "database systems tutorial")]);
        let coll = b.build();
        let gt = GroundTruth::from_pairs(3, [Pair::new(a, c)]);
        let _ = d;
        (coll, gt)
    }

    #[test]
    fn oracle_reflects_truth() {
        let (_, gt) = fixture();
        let m = OracleMatcher::new(&gt);
        assert!(m.matches(ProfileId(0), ProfileId(1)));
        assert!(!m.matches(ProfileId(0), ProfileId(2)));
        assert_eq!(m.name(), "oracle");
    }

    #[test]
    fn edit_distance_close_pair() {
        let (coll, _) = fixture();
        let text = ProfileText::extract(&coll);
        let m = EditDistanceMatcher::new(&text, 0.7);
        assert!(m.matches(ProfileId(0), ProfileId(1)));
        assert!(!m.matches(ProfileId(0), ProfileId(2)));
        assert!(m.similarity(ProfileId(0), ProfileId(0)) >= 1.0 - 1e-12);
    }

    #[test]
    fn jaccard_close_pair() {
        let (coll, _) = fixture();
        let text = ProfileText::extract(&coll);
        let m = JaccardMatcher::new(&text, 0.4);
        // {carl, white, tailor} vs {karl, white, tailor}: 2/4 = 0.5.
        assert!(m.matches(ProfileId(0), ProfileId(1)));
        assert!(!m.matches(ProfileId(0), ProfileId(2)));
    }

    #[test]
    fn thresholds_are_inclusive() {
        let (coll, _) = fixture();
        let text = ProfileText::extract(&coll);
        let m = JaccardMatcher::new(&text, 0.5);
        assert!(m.matches(ProfileId(0), ProfileId(1)));
        let strict = JaccardMatcher::new(&text, 0.5 + 1e-9);
        assert!(!strict.matches(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn profile_jaccard_helper() {
        let (coll, _) = fixture();
        let j = profile_jaccard(coll.get(ProfileId(0)), coll.get(ProfileId(1)));
        assert!((j - 0.5).abs() < 1e-12);
    }
}
