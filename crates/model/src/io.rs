//! Plain-text I/O for profile collections: CSV with a header row
//! (attribute names = column names; empty cells = missing attributes) and a
//! simple two-column match file for ground truths.
//!
//! Hand-rolled RFC-4180-style parsing (quotes, escaped quotes, embedded
//! commas/newlines) — no external CSV dependency.

use crate::ground_truth::GroundTruth;
use crate::profile::{Attribute, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use crate::Pair;
use std::io::{self, BufRead, Write};

/// Parses one CSV record from `input` starting at byte `pos`; returns the
/// fields and the next position, or `None` at end of input.
fn parse_record(input: &str, mut pos: usize) -> Option<(Vec<String>, usize)> {
    let bytes = input.as_bytes();
    if pos >= bytes.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    while pos < bytes.len() {
        let c = bytes[pos];
        if in_quotes {
            match c {
                b'"' if pos + 1 < bytes.len() && bytes[pos + 1] == b'"' => {
                    field.push('"');
                    pos += 2;
                }
                b'"' => {
                    in_quotes = false;
                    pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 is copied verbatim.
                    let ch_len = utf8_len(c);
                    field.push_str(&input[pos..pos + ch_len]);
                    pos += ch_len;
                }
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' if pos + 1 < bytes.len() && bytes[pos + 1] == b'\n' => {
                    pos += 2;
                    fields.push(field);
                    return Some((fields, pos));
                }
                b'\n' => {
                    pos += 1;
                    fields.push(field);
                    return Some((fields, pos));
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[pos..pos + ch_len]);
                    pos += ch_len;
                }
            }
        }
    }
    fields.push(field);
    Some((fields, pos))
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Reads a Dirty-ER profile collection from CSV text: the first record is
/// the header (attribute names), every following record one profile; empty
/// cells are skipped (missing attributes).
///
/// # Errors
///
/// Returns an error for an empty input or records wider than the header.
pub fn read_csv(text: &str) -> io::Result<ProfileCollection> {
    let mut pos = 0;
    let Some((header, next)) = parse_record(text, pos) else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty CSV"));
    };
    pos = next;
    let mut builder = ProfileCollectionBuilder::dirty();
    while let Some((record, next)) = parse_record(text, pos) {
        pos = next;
        if record.len() == 1 && record[0].is_empty() {
            continue; // trailing blank line
        }
        if record.len() > header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record has {} fields, header {}",
                    record.len(),
                    header.len()
                ),
            ));
        }
        let attrs: Vec<Attribute> = header
            .iter()
            .zip(record.iter())
            .filter(|(_, v)| !v.is_empty())
            .map(|(n, v)| Attribute::new(n.clone(), v.clone()))
            .collect();
        builder.add_attributes(attrs);
    }
    Ok(builder.build())
}

/// Writes a profile collection as CSV (columns = all attribute names in
/// first-seen order; profiles missing an attribute leave the cell empty;
/// repeated attributes are joined with `;`).
pub fn write_csv<W: Write>(collection: &ProfileCollection, out: &mut W) -> io::Result<()> {
    let mut columns: Vec<String> = Vec::new();
    for p in collection.iter() {
        for a in &p.attributes {
            if !columns.contains(&a.name) {
                columns.push(a.name.clone());
            }
        }
    }
    writeln!(
        out,
        "{}",
        columns
            .iter()
            .map(|c| escape(c))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for p in collection.iter() {
        let row: Vec<String> = columns
            .iter()
            .map(|col| {
                let values: Vec<&str> = p
                    .attributes
                    .iter()
                    .filter(|a| &a.name == col)
                    .map(|a| a.value.as_str())
                    .collect();
                escape(&values.join(";"))
            })
            .collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Reads a ground truth from two-column `id,id` lines (no header).
///
/// # Errors
///
/// Returns an error on malformed lines or out-of-range ids.
pub fn read_matches<R: BufRead>(reader: R, n_profiles: usize) -> io::Result<GroundTruth> {
    let mut pairs = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split(',');
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.map(str::trim)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing id"))?
                .parse::<u32>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        };
        let a = parse(it.next())?;
        let b = parse(it.next())?;
        if a as usize >= n_profiles || b as usize >= n_profiles {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("id out of range: {line}"),
            ));
        }
        if a != b {
            pairs.push(Pair::new(ProfileId(a), ProfileId(b)));
        }
    }
    Ok(GroundTruth::from_pairs(n_profiles, pairs))
}

/// Writes a ground truth as two-column `id,id` lines.
pub fn write_matches<W: Write>(truth: &GroundTruth, out: &mut W) -> io::Result<()> {
    let mut pairs: Vec<&Pair> = truth.pairs().collect();
    pairs.sort();
    for p in pairs {
        writeln!(out, "{},{}", p.first.0, p.second.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "name,city,job\nCarl White,NY,Tailor\n\"Doe, Jane\",\"said \"\"hi\"\"\",\nKarl White,NY,Tailor\n";

    #[test]
    fn read_basic_csv() {
        let coll = read_csv(SAMPLE).unwrap();
        assert_eq!(coll.len(), 3);
        assert_eq!(coll.get(ProfileId(0)).value_of("name"), Some("Carl White"));
        // Quoted comma and escaped quotes.
        assert_eq!(coll.get(ProfileId(1)).value_of("name"), Some("Doe, Jane"));
        assert_eq!(coll.get(ProfileId(1)).value_of("city"), Some("said \"hi\""));
        // Empty cell = missing attribute.
        assert_eq!(coll.get(ProfileId(1)).value_of("job"), None);
        assert_eq!(coll.get(ProfileId(1)).num_pairs(), 2);
    }

    #[test]
    fn roundtrip() {
        let coll = read_csv(SAMPLE).unwrap();
        let mut buf = Vec::new();
        write_csv(&coll, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let again = read_csv(&text).unwrap();
        assert_eq!(coll.len(), again.len());
        for (a, b) in coll.iter().zip(again.iter()) {
            assert_eq!(a.attributes, b.attributes);
        }
    }

    #[test]
    fn rejects_empty_and_wide_records() {
        assert!(read_csv("").is_err());
        assert!(read_csv("a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn short_records_are_padded_with_missing() {
        let coll = read_csv("a,b,c\nx\n").unwrap();
        assert_eq!(coll.len(), 1);
        assert_eq!(coll.get(ProfileId(0)).num_pairs(), 1);
    }

    #[test]
    fn matches_roundtrip() {
        let truth = GroundTruth::from_pairs(
            5,
            [
                Pair::new(ProfileId(0), ProfileId(2)),
                Pair::new(ProfileId(1), ProfileId(4)),
            ],
        );
        let mut buf = Vec::new();
        write_matches(&truth, &mut buf).unwrap();
        let again = read_matches(&buf[..], 5).unwrap();
        assert_eq!(again.num_matches(), 2);
        assert!(again.is_match(ProfileId(0), ProfileId(2)));
    }

    #[test]
    fn matches_reject_bad_input() {
        assert!(read_matches("0,9".as_bytes(), 5).is_err());
        assert!(read_matches("zero,1".as_bytes(), 5).is_err());
        assert!(read_matches("3".as_bytes(), 5).is_err());
        // Self-pairs are silently dropped, blank lines skipped.
        let t = read_matches("2,2\n\n0,1\n".as_bytes(), 5).unwrap();
        assert_eq!(t.num_matches(), 1);
    }

    #[test]
    fn utf8_values_survive() {
        let coll = read_csv("n\ncafé München\n").unwrap();
        assert_eq!(coll.get(ProfileId(0)).value_of("n"), Some("café München"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::profile::Profile;
    use proptest::prelude::*;

    /// Field pool chosen to force every RFC-4180 corner the writer must
    /// escape: embedded commas, double quotes, newlines, and multi-byte
    /// UTF-8 (2- and 3-byte sequences) — plus plain text and spaces.
    const FIELD: &str = "[a-e0-2 ,\"\n東µß]{0,10}";

    proptest! {
        /// `read_csv(write_csv(c))` reproduces every profile exactly. Empty
        /// cells mean "missing attribute" in this format, so generated empty
        /// fields are simply never added (and rows must keep at least one
        /// attribute — an attribute-less profile in a one-column collection
        /// serializes to a blank line, which the reader skips by design).
        #[test]
        fn csv_roundtrip_preserves_profiles(
            raw in collection::vec(collection::vec(FIELD, 1..5), 1..12),
        ) {
            prop_assume!(raw.iter().all(|row| row.iter().any(|v| !v.is_empty())));
            let mut builder = ProfileCollectionBuilder::dirty();
            for row in &raw {
                let attrs: Vec<Attribute> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(i, v)| Attribute::new(format!("col{i}"), v.clone()))
                    .collect();
                builder.add_attributes(attrs);
            }
            let coll = builder.build();
            let mut buf = Vec::new();
            write_csv(&coll, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let again = read_csv(&text).unwrap();
            prop_assert_eq!(coll.len(), again.len(), "profile count after roundtrip");
            // Column order is first-seen across the whole collection, so a
            // profile missing early columns may get its attributes back in a
            // different order — compare as multisets.
            let key = |p: &Profile| {
                let mut attrs: Vec<(String, String)> = p
                    .attributes
                    .iter()
                    .map(|a| (a.name.clone(), a.value.clone()))
                    .collect();
                attrs.sort();
                attrs
            };
            for (a, b) in coll.iter().zip(again.iter()) {
                prop_assert_eq!(key(a), key(b));
            }
        }

        /// Quoted headers survive too: attribute *names* drawn from the
        /// same hostile pool round-trip alongside their values.
        #[test]
        fn csv_roundtrip_preserves_hostile_headers(
            names in collection::btree_set(FIELD, 1..4),
            value in FIELD,
        ) {
            let mut builder = ProfileCollectionBuilder::dirty();
            let attrs: Vec<Attribute> = names
                .iter()
                .filter(|n| !n.is_empty())
                .map(|n| Attribute::new(n.clone(), format!("v{value}")))
                .collect();
            prop_assume!(!attrs.is_empty());
            builder.add_attributes(attrs.clone());
            let coll = builder.build();
            let mut buf = Vec::new();
            write_csv(&coll, &mut buf).unwrap();
            let again = read_csv(std::str::from_utf8(&buf).unwrap()).unwrap();
            prop_assert_eq!(&again.get(ProfileId(0)).attributes, &attrs);
        }

        /// Match files round-trip: the closure enumerated by the written
        /// ground truth equals the one read back.
        #[test]
        fn matches_roundtrip_preserves_closure(
            n in 2u32..40,
            seed_pairs in collection::vec((0u32..40, 0u32..40), 0..60),
        ) {
            let pairs: Vec<Pair> = seed_pairs
                .into_iter()
                .filter(|(a, b)| a != b && *a < n && *b < n)
                .map(|(a, b)| Pair::new(ProfileId(a), ProfileId(b)))
                .collect();
            let truth = GroundTruth::from_pairs(n as usize, pairs);
            let mut buf = Vec::new();
            write_matches(&truth, &mut buf).unwrap();
            let again = read_matches(&buf[..], n as usize).unwrap();
            prop_assert_eq!(truth.num_matches(), again.num_matches());
            for p in truth.pairs() {
                prop_assert!(again.is_match_pair(*p), "{:?} lost in roundtrip", p);
            }
        }
    }
}
