//! Ground truth: the known set of duplicate pairs `DP` (§7, Table 2).
//!
//! Internally the truth is an equivalence relation over profile ids
//! (union–find), from which the duplicate-pair set is enumerated: Dirty-ER
//! clusters of size `k` contribute `k·(k−1)/2` pairs (this is how cora's
//! 1.3 k profiles yield 17 k matches), while Clean-clean truths pair ids
//! across the two sources.

use crate::comparison::Pair;
use crate::profile::{ErKind, ProfileCollection, ProfileId};
use crate::union_find::UnionFind;
use std::collections::HashSet;

/// The set of true matches of an ER task.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pairs: HashSet<Pair>,
    /// Cluster representative per profile for O(1) `is_match` in the common
    /// case; pairs set remains the source of truth for Clean-clean tasks
    /// where transitivity across sources is not assumed.
    representative: Vec<u32>,
}

impl GroundTruth {
    /// Builds the truth from equivalence clusters over `n` profiles. All
    /// within-cluster pairs become matches.
    pub fn from_clusters(n: usize, clusters: &[Vec<ProfileId>]) -> Self {
        let mut uf = UnionFind::new(n);
        for cluster in clusters {
            for w in cluster.windows(2) {
                uf.union(w[0].index(), w[1].index());
            }
        }
        Self::from_union_find(n, uf)
    }

    /// Builds the truth from explicit matching pairs, closing transitively
    /// (the paper's oracle discussion §2 notes transitivity is a property of
    /// ground truths even when match functions lack it).
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = Pair>) -> Self {
        let mut uf = UnionFind::new(n);
        for p in pairs {
            uf.union(p.first.index(), p.second.index());
        }
        Self::from_union_find(n, uf)
    }

    fn from_union_find(n: usize, mut uf: UnionFind) -> Self {
        let mut representative = vec![0u32; n];
        for (i, slot) in representative.iter_mut().enumerate() {
            *slot = uf.find(i) as u32;
        }
        let mut pairs = HashSet::new();
        for cluster in uf.clusters(2) {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    pairs.insert(Pair::new(ProfileId(a as u32), ProfileId(b as u32)));
                }
            }
        }
        Self {
            pairs,
            representative,
        }
    }

    /// Number of duplicate pairs, `|DP|`.
    pub fn num_matches(&self) -> usize {
        self.pairs.len()
    }

    /// True when the two profiles are duplicates.
    #[inline]
    pub fn is_match(&self, a: ProfileId, b: ProfileId) -> bool {
        a != b && self.representative[a.index()] == self.representative[b.index()]
    }

    /// True when `pair` is a duplicate pair.
    #[inline]
    pub fn is_match_pair(&self, pair: Pair) -> bool {
        self.is_match(pair.first, pair.second)
    }

    /// Iterates the duplicate pairs in unspecified order.
    pub fn pairs(&self) -> impl Iterator<Item = &Pair> {
        self.pairs.iter()
    }

    /// The equivalence clusters of size ≥ 2 (the distinct duplicated
    /// entities).
    pub fn clusters(&self) -> Vec<Vec<ProfileId>> {
        let mut uf = UnionFind::new(self.representative.len());
        for p in &self.pairs {
            uf.union(p.first.index(), p.second.index());
        }
        uf.clusters(2)
            .into_iter()
            .map(|c| c.into_iter().map(|i| ProfileId(i as u32)).collect())
            .collect()
    }

    /// Validates the truth against a collection: every pair must be a valid
    /// comparison of the task (distinct ids; cross-source for Clean-clean).
    /// Returns the number of violating pairs (0 when consistent).
    pub fn validate(&self, collection: &ProfileCollection) -> usize {
        self.pairs
            .iter()
            .filter(|p| !collection.is_valid_comparison(p.first, p.second))
            .count()
    }

    /// For Clean-clean tasks, a sanity property: each source is
    /// duplicate-free, so every cluster has at most one profile per source.
    /// Returns true when that holds (always true for Dirty).
    pub fn clean_sources_are_duplicate_free(&self, collection: &ProfileCollection) -> bool {
        if collection.kind() == ErKind::Dirty {
            return true;
        }
        self.clusters().iter().all(|c| {
            let firsts = c
                .iter()
                .filter(|&&p| collection.source_of(p) == crate::profile::SourceId::FIRST)
                .count();
            firsts <= 1 && c.len() - firsts <= 1
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn cluster_pair_count() {
        // Fig. 3: p1≡p2≡p3 and p4≡p5 → C(3,2) + C(2,2) = 3 + 1 = 4 pairs.
        let gt =
            GroundTruth::from_clusters(6, &[vec![pid(0), pid(1), pid(2)], vec![pid(3), pid(4)]]);
        assert_eq!(gt.num_matches(), 4);
        assert!(gt.is_match(pid(0), pid(2)));
        assert!(gt.is_match(pid(3), pid(4)));
        assert!(!gt.is_match(pid(0), pid(3)));
        assert!(!gt.is_match(pid(5), pid(5)));
    }

    #[test]
    fn from_pairs_closes_transitively() {
        let gt = GroundTruth::from_pairs(4, [Pair::new(pid(0), pid(1)), Pair::new(pid(1), pid(2))]);
        assert!(gt.is_match(pid(0), pid(2)));
        assert_eq!(gt.num_matches(), 3);
    }

    #[test]
    fn clusters_roundtrip() {
        let gt = GroundTruth::from_clusters(5, &[vec![pid(1), pid(3), pid(4)]]);
        let clusters = gt.clusters();
        assert_eq!(clusters, vec![vec![pid(1), pid(3), pid(4)]]);
    }

    #[test]
    fn validate_against_collection() {
        use crate::profile::ProfileCollectionBuilder;
        let mut b = ProfileCollectionBuilder::clean_clean();
        let a = b.add_profile([("n", "x")]);
        let c = b.add_profile([("n", "y")]);
        b.start_second_source();
        let d = b.add_profile([("n", "x")]);
        let coll = b.build();

        let good = GroundTruth::from_pairs(3, [Pair::new(a, d)]);
        assert_eq!(good.validate(&coll), 0);
        assert!(good.clean_sources_are_duplicate_free(&coll));

        let bad = GroundTruth::from_pairs(3, [Pair::new(a, c)]);
        assert_eq!(bad.validate(&coll), 1);
        assert!(!bad.clean_sources_are_duplicate_free(&coll));
    }

    #[test]
    fn empty_truth() {
        let gt = GroundTruth::from_clusters(10, &[]);
        assert_eq!(gt.num_matches(), 0);
        assert!(gt.clusters().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// |DP| equals Σ k·(k−1)/2 over clusters, and is_match agrees with
        /// the enumerated pair set.
        #[test]
        fn pair_count_matches_cluster_sizes(
            n in 2usize..30,
            seed_pairs in proptest::collection::vec((0u32..30, 0u32..30), 0..40),
        ) {
            let pairs: Vec<Pair> = seed_pairs
                .into_iter()
                .filter(|(a, b)| a != b && (*a as usize) < n && (*b as usize) < n)
                .map(|(a, b)| Pair::new(ProfileId(a), ProfileId(b)))
                .collect();
            let gt = GroundTruth::from_pairs(n, pairs);
            let expected: usize = gt
                .clusters()
                .iter()
                .map(|c| c.len() * (c.len() - 1) / 2)
                .sum();
            prop_assert_eq!(gt.num_matches(), expected);
            for p in gt.pairs() {
                prop_assert!(gt.is_match_pair(*p));
            }
        }
    }
}
