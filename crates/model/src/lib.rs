//! # sper-model
//!
//! The entity-profile data model of schema-agnostic ER (§3 of the paper):
//!
//! * [`Profile`] — a uniquely identified set of attribute name–value pairs,
//!   the common denominator of relational rows, RDF resources, JSON objects
//!   and text snippets.
//! * [`ProfileCollection`] — the input of an ER task, either *Dirty*
//!   (one source with internal duplicates) or *Clean-clean* (two
//!   duplicate-free overlapping sources).
//! * [`GroundTruth`] — the known matches, stored as an equivalence relation
//!   (union–find) and enumerable as the set of duplicate pairs `DP`.
//! * [`MatchFunction`] — the binary match decision the progressive methods
//!   are decoupled from (§7.3): oracle, edit-distance and Jaccard matchers.

pub mod comparison;
pub mod ground_truth;
pub mod io;
pub mod matcher;
pub mod profile;
pub mod union_find;

pub use comparison::Pair;
pub use ground_truth::GroundTruth;
pub use matcher::{EditDistanceMatcher, JaccardMatcher, MatchFunction, OracleMatcher, ProfileText};
pub use profile::{
    Attribute, ErKind, Profile, ProfileCollection, ProfileCollectionBuilder, ProfileId, SourceId,
};
pub use union_find::UnionFind;
