//! Unordered profile pairs — the unit of work of progressive ER.

use crate::profile::ProfileId;
use serde::{Deserialize, Serialize};

/// An unordered pair of distinct profiles, stored canonically with the
/// smaller id first so that `Pair::new(a, b) == Pair::new(b, a)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pair {
    /// Smaller profile id.
    pub first: ProfileId,
    /// Larger profile id.
    pub second: ProfileId,
}

impl Pair {
    /// Creates a canonical pair.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` — a profile never matches against itself.
    #[inline]
    pub fn new(a: ProfileId, b: ProfileId) -> Self {
        assert_ne!(a, b, "a pair must contain two distinct profiles");
        if a < b {
            Self {
                first: a,
                second: b,
            }
        } else {
            Self {
                first: b,
                second: a,
            }
        }
    }

    /// True when `p` is one of the two endpoints.
    #[inline]
    pub fn contains(&self, p: ProfileId) -> bool {
        self.first == p || self.second == p
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not part of the pair.
    #[inline]
    pub fn other(&self, p: ProfileId) -> ProfileId {
        if p == self.first {
            self.second
        } else if p == self.second {
            self.first
        } else {
            panic!("{p} is not an endpoint of {self:?}")
        }
    }
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c({},{})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let p = Pair::new(ProfileId(5), ProfileId(2));
        assert_eq!(p.first, ProfileId(2));
        assert_eq!(p.second, ProfileId(5));
        assert_eq!(p, Pair::new(ProfileId(2), ProfileId(5)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_pair_panics() {
        Pair::new(ProfileId(1), ProfileId(1));
    }

    #[test]
    fn contains_and_other() {
        let p = Pair::new(ProfileId(1), ProfileId(9));
        assert!(p.contains(ProfileId(9)));
        assert!(!p.contains(ProfileId(2)));
        assert_eq!(p.other(ProfileId(1)), ProfileId(9));
        assert_eq!(p.other(ProfileId(9)), ProfileId(1));
    }

    #[test]
    #[should_panic]
    fn other_with_non_member_panics() {
        Pair::new(ProfileId(1), ProfileId(2)).other(ProfileId(3));
    }
}
