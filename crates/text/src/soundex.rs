//! American Soundex — the phonetic encoding used to build PSN's schema-based
//! blocking keys for the census twin (paper footnote 6: "Soundex encoded
//! surnames concatenated to initials and zipcodes").

/// Encodes `name` with American Soundex, returning a 4-character code such
/// as `"R163"` for `"Robert"`. Non-alphabetic characters are skipped; an
/// input without any letters yields `"0000"`.
///
/// # Examples
///
/// ```
/// use sper_text::soundex;
/// assert_eq!(soundex("Robert"), "R163");
/// assert_eq!(soundex("Rupert"), "R163");
/// assert_eq!(soundex("Tymczak"), "T522");
/// assert_eq!(soundex("Pfister"), "P236");
/// assert_eq!(soundex("Honeyman"), "H555");
/// ```
pub fn soundex(name: &str) -> String {
    fn digit(c: u8) -> u8 {
        match c {
            b'b' | b'f' | b'p' | b'v' => b'1',
            b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => b'2',
            b'd' | b't' => b'3',
            b'l' => b'4',
            b'm' | b'n' => b'5',
            b'r' => b'6',
            _ => b'0', // vowels + h, w, y
        }
    }

    let letters: Vec<u8> = name
        .bytes()
        .filter(|b| b.is_ascii_alphabetic())
        .map(|b| b.to_ascii_lowercase())
        .collect();
    let Some(&first) = letters.first() else {
        return "0000".to_string();
    };

    let mut code = vec![first.to_ascii_uppercase()];
    let mut last_digit = digit(first);
    for &c in &letters[1..] {
        let d = digit(c);
        if d == b'0' {
            // h and w are "transparent": they do NOT reset the previous
            // digit; vowels do.
            if c != b'h' && c != b'w' {
                last_digit = b'0';
            }
            continue;
        }
        if d != last_digit {
            code.push(d);
            if code.len() == 4 {
                break;
            }
        }
        last_digit = d;
    }
    while code.len() < 4 {
        code.push(b'0');
    }
    String::from_utf8(code).expect("soundex output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples() {
        // The classic reference vectors from the U.S. National Archives.
        assert_eq!(soundex("Washington"), "W252");
        assert_eq!(soundex("Lee"), "L000");
        assert_eq!(soundex("Gutierrez"), "G362");
        assert_eq!(soundex("Jackson"), "J250");
        assert_eq!(soundex("Ashcraft"), "A261"); // h is transparent
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("SMITH"), soundex("smith"));
        assert_eq!(soundex("Smith"), "S530");
        assert_eq!(soundex("Smyth"), "S530");
    }

    #[test]
    fn non_alpha_skipped() {
        assert_eq!(soundex("O'Brien"), soundex("OBrien"));
    }

    #[test]
    fn empty_and_non_alpha() {
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("123"), "0000");
    }

    #[test]
    fn single_letter() {
        assert_eq!(soundex("A"), "A000");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Output is always 4 chars: uppercase letter or '0', then digits.
        #[test]
        fn shape(s in "\\PC{0,16}") {
            let code = soundex(&s);
            prop_assert_eq!(code.len(), 4);
            let bytes = code.as_bytes();
            prop_assert!(bytes[0].is_ascii_uppercase() || bytes[0] == b'0');
            prop_assert!(bytes[1..].iter().all(|b| b.is_ascii_digit()));
        }
    }
}
