//! Jaccard similarity — the paper's *cheap* match function (§7.3, \[26\]).
//!
//! `J(A, B) = |A ∩ B| / |A ∪ B]` over token sets. Complexity `O(s + t)` for
//! pre-sorted inputs, matching the paper's stated cost.

use std::collections::HashSet;

/// Jaccard similarity of two token multisets, treated as sets.
///
/// Both empty → `1.0` (identical empties); one empty → `0.0`.
///
/// # Examples
///
/// ```
/// use sper_text::jaccard_similarity;
/// let a = ["carl", "white", "tailor"];
/// let b = ["karl", "white", "tailor"];
/// assert!((jaccard_similarity(&a, &b) - 0.5).abs() < 1e-9); // 2 shared / 4 union
/// ```
pub fn jaccard_similarity<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard similarity over **sorted, deduplicated** token slices, computed by
/// a single linear merge — the `O(s + t)` fast path used by the harness when
/// profiles carry pre-sorted token sets.
///
/// # Panics
///
/// Debug-asserts that inputs are sorted and deduplicated.
pub fn jaccard_similarity_sorted<S: AsRef<str> + Ord>(a: &[S], b: &[S]) -> f64 {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]),
        "input `a` must be sorted+dedup"
    );
    debug_assert!(
        b.windows(2).all(|w| w[0] < w[1]),
        "input `b` must be sorted+dedup"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].as_ref().cmp(b[j].as_ref()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard_similarity(&["a", "b"], &["b", "a"]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard_similarity(&["a"], &["b"]), 0.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(jaccard_similarity::<&str>(&[], &[]), 1.0);
        assert_eq!(jaccard_similarity(&["a"], &[]), 0.0);
    }

    #[test]
    fn multiset_duplicates_ignored() {
        assert_eq!(jaccard_similarity(&["a", "a", "b"], &["a", "b", "b"]), 1.0);
    }

    #[test]
    fn sorted_variant_matches() {
        let a = vec!["alpha", "beta", "gamma"];
        let b = vec!["beta", "delta", "gamma"];
        assert_eq!(
            jaccard_similarity(&a, &b),
            jaccard_similarity_sorted(&a, &b)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn token_set() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::btree_set("[a-e]{1,3}", 0..8)
            .prop_map(|s: BTreeSet<String>| s.into_iter().collect())
    }

    proptest! {
        /// Sorted fast path agrees with the hash-set reference on all inputs.
        #[test]
        fn sorted_agrees_with_reference(a in token_set(), b in token_set()) {
            let fast = jaccard_similarity_sorted(&a, &b);
            let slow = jaccard_similarity(&a, &b);
            prop_assert!((fast - slow).abs() < 1e-12);
        }

        /// Range, symmetry, and identity.
        #[test]
        fn axioms(a in token_set(), b in token_set()) {
            let j = jaccard_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert_eq!(j, jaccard_similarity(&b, &a));
            prop_assert_eq!(jaccard_similarity(&a, &a), 1.0);
        }
    }
}
