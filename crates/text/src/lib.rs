#![deny(missing_docs)]
//! # sper-text
//!
//! Text-processing substrate for schema-agnostic entity resolution:
//! normalization, attribute-value tokenization (the schema-agnostic blocking
//! keys of Token Blocking), suffix extraction (Suffix Arrays Blocking), and
//! the string-similarity / phonetic functions used as match functions and as
//! schema-based blocking keys in the paper's evaluation (§7.3, footnote 6).
//!
//! Everything here is allocation-conscious: hot functions take `&str`/slices
//! and reusable buffers where it matters, following the Rust Performance Book
//! guidance on heap allocations.

pub mod fxhash;
pub mod interner;
pub mod jaccard;
pub mod levenshtein;
pub mod normalize;
pub mod qgrams;
pub mod soundex;
pub mod suffixes;
pub mod tokenize;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{DuplicateToken, TokenId, TokenInterner};
pub use jaccard::{jaccard_similarity, jaccard_similarity_sorted};
pub use levenshtein::{
    damerau_levenshtein, levenshtein, levenshtein_bounded, normalized_levenshtein,
};
pub use normalize::normalize_token;
pub use qgrams::{qgram_similarity, qgrams};
pub use soundex::soundex;
pub use suffixes::{suffixes_of, SuffixIter};
pub use tokenize::{tokenize_value, tokenize_value_into, Tokenizer, TokenizerConfig};
