//! Edit-distance match functions.
//!
//! The paper's time-efficiency evaluation (§7.3) pairs every progressive
//! method with an *expensive* match function — edit distance \[25\] — and a
//! *cheap* one — Jaccard similarity \[26\]. This module provides plain
//! Levenshtein, the Damerau variant (the paper cites Bard's
//! Damerau–Levenshtein work), a bounded early-exit variant, and a normalized
//! similarity in `\[0, 1\]`.
//!
//! Complexity is `O(s·t)` time, `O(min(s, t))` space (two rolling rows).

/// Classic Levenshtein distance (insertions, deletions, substitutions).
///
/// # Examples
///
/// ```
/// use sper_text::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let short: Vec<char> = short.chars().collect();
    if short.is_empty() {
        return long.chars().count();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    let mut long_len = 0usize;
    for (i, lc) in long.chars().enumerate() {
        long_len = i + 1;
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    if long_len == 0 {
        return short.len();
    }
    prev[short.len()]
}

/// Levenshtein distance with an upper bound: returns `None` as soon as the
/// distance provably exceeds `bound`, saving work for dissimilar pairs.
///
/// # Examples
///
/// ```
/// use sper_text::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let short: Vec<char> = short.chars().collect();
    let long: Vec<char> = long.chars().collect();
    if long.len() - short.len() > bound {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= bound).then_some(long.len());
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        let mut row_min = curr[0];
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            row_min = row_min.min(curr[j + 1]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[short.len()];
    (d <= bound).then_some(d)
}

/// Damerau–Levenshtein distance (adds adjacent transpositions), the
/// "spelling-error tolerant" metric of reference \[25\].
///
/// This is the *optimal string alignment* variant: each substring may be
/// edited at most once, which is the standard choice for record linkage.
///
/// # Examples
///
/// ```
/// use sper_text::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("ca", "ac"), 1); // one transposition
/// assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let w = b.len() + 1;
    // Three rolling rows are needed for the transposition lookback.
    let mut prev2: Vec<usize> = vec![0; w];
    let mut prev: Vec<usize> = (0..w).collect();
    let mut curr: Vec<usize> = vec![0; w];
    for i in 1..=a.len() {
        curr[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j - 1] + cost).min(prev[j] + 1).min(curr[j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                curr[j] = curr[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity: `1 − d(a, b) / max(|a|, |b|)`, in
/// `\[0, 1\]`; `1.0` for two empty strings.
///
/// # Examples
///
/// ```
/// use sper_text::normalized_levenshtein;
/// assert!((normalized_levenshtein("carl", "karl") - 0.75).abs() < 1e-9);
/// assert_eq!(normalized_levenshtein("", ""), 1.0);
/// ```
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("kitten", "sitting"), ("abc", "ya"), ("", "xyz")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn bounded_agrees_with_unbounded() {
        let cases = [("kitten", "sitting"), ("carl", "karl"), ("ny", "nyc")];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_length_prefilter() {
        // Length difference alone exceeds the bound — must bail immediately.
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn damerau_transposition_is_one() {
        assert_eq!(damerau_levenshtein("abcd", "abdc"), 1);
        // Plain Levenshtein needs two edits for the same pair.
        assert_eq!(levenshtein("abcd", "abdc"), 2);
    }

    #[test]
    fn damerau_reduces_to_levenshtein_without_transpositions() {
        for (a, b) in [("kitten", "sitting"), ("", "abc"), ("book", "back")] {
            assert_eq!(damerau_levenshtein(a, b), levenshtein(a, b));
        }
    }

    #[test]
    fn normalized_range() {
        assert_eq!(normalized_levenshtein("same", "same"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
    }

    #[test]
    fn unicode_chars_counted_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(damerau_levenshtein("über", "ubër"), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Triangle inequality: d(a,c) ≤ d(a,b) + d(b,c).
        #[test]
        fn triangle_inequality(
            a in "[a-c]{0,8}",
            b in "[a-c]{0,8}",
            c in "[a-c]{0,8}",
        ) {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// Identity of indiscernibles and symmetry.
        #[test]
        fn metric_axioms(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            if a != b {
                prop_assert!(levenshtein(&a, &b) > 0);
            }
        }

        /// Distance bounded by the longer length; Damerau ≤ Levenshtein.
        #[test]
        fn bounds(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(damerau_levenshtein(&a, &b) <= d);
            let n = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&n));
        }

        /// The bounded variant agrees with the exact distance whenever the
        /// bound is large enough, and returns None otherwise.
        #[test]
        fn bounded_consistency(a in "[a-z]{0,10}", b in "[a-z]{0,10}", bound in 0usize..12) {
            let d = levenshtein(&a, &b);
            match levenshtein_bounded(&a, &b, bound) {
                Some(got) => {
                    prop_assert_eq!(got, d);
                    prop_assert!(d <= bound);
                }
                None => prop_assert!(d > bound),
            }
        }
    }
}
