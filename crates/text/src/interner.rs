//! Token interning: the string ↔ dense-id boundary of the columnar core.
//!
//! Every blocking substrate in the workspace (token blocks, suffix blocks,
//! Neighbor List placements) is keyed by attribute-value tokens. Interning
//! each distinct token string to a dense [`TokenId`] once moves every hot
//! path from string hashing/cloning to `u32` arithmetic, and lets the block
//! index be a flat `Vec` indexed by id — the same compact-integer idiom the
//! paper prescribes for profile ids (§5.1.1, §5.2.1), applied to tokens.
//!
//! The interner is **append-only** and **concurrent**: ids are never
//! reassigned or removed, so readers can cache ids across calls, the
//! parallel blocking workers (`sper-blocking::parallel`) can intern from
//! many threads, and the streaming substrates (`sper-stream`) can share one
//! interner across ingest epochs. Id assignment order is an implementation
//! detail (first-come); nothing observable may depend on it — ordered
//! outputs sort by the *resolved string*, for which [`TokenInterner::rank`]
//! provides a dense lexicographic rank table.

use crate::fxhash::FxHashMap;
use std::sync::{Arc, RwLock};

/// Dense identifier of an interned token string.
///
/// Ids are dense (`0..len`), so token-keyed indexes are flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TokenId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Fx-hashed: tokens are trusted in-process data, hashed once per
    /// intern call — the fast hash is the point of the exercise.
    map: FxHashMap<Arc<str>, TokenId>,
    strings: Vec<Arc<str>>,
}

/// Append-only concurrent string interner.
///
/// * [`intern`](Self::intern) takes `&self` — a read-lock fast path for
///   already-known tokens (the overwhelmingly common case after warm-up),
///   a short write-lock only for genuinely new tokens.
/// * [`resolve`](Self::resolve) returns the shared `Arc<str>`, so callers
///   keep zero-copy handles to token text.
///
/// Shared as `Arc<TokenInterner>` between every structure built over the
/// same vocabulary (block collections, neighbor lists, streaming epochs).
///
/// ```
/// use sper_text::TokenInterner;
///
/// let interner = TokenInterner::shared();
/// let carl = interner.intern("carl");
/// assert_eq!(interner.intern("carl"), carl, "idempotent");
/// assert_eq!(&*interner.resolve(carl), "carl");
/// // The rank table orders ids by their string, for text-ordered output.
/// let white = interner.intern("white");
/// let rank = interner.rank();
/// assert!(rank[carl.index()] < rank[white.index()]);
/// ```
#[derive(Debug, Default)]
pub struct TokenInterner {
    inner: RwLock<Inner>,
    /// Memoized lexicographic rank table, keyed by the vocabulary size it
    /// was computed for — append-only interning means equal size ⇒
    /// identical table, so steady-state `rank()` calls (e.g. one per
    /// streaming snapshot) are a read-lock and an `Arc` clone.
    rank_cache: RwLock<(usize, Arc<Vec<u32>>)>,
}

/// Error of [`TokenInterner::from_strings`]: the input listed the same
/// token twice, which would make id lookups ambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateToken {
    /// The repeated token text.
    pub token: String,
    /// Index (= would-be id) of the second occurrence.
    pub index: usize,
}

impl std::fmt::Display for DuplicateToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "duplicate token {:?} at index {}",
            self.token, self.index
        )
    }
}

impl std::error::Error for DuplicateToken {}

impl TokenInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Rebuilds an interner from its id-ordered vocabulary — the inverse
    /// of [`strings`](Self::strings), used by the persistence layer
    /// (`sper-store`) to restore snapshots with every id preserved.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateToken`] when the same string appears twice: ids
    /// could no longer round-trip through [`get`](Self::get).
    pub fn from_strings<S: AsRef<str>>(
        strings: impl IntoIterator<Item = S>,
    ) -> Result<Self, DuplicateToken> {
        let mut inner = Inner::default();
        for (i, s) in strings.into_iter().enumerate() {
            let s: Arc<str> = Arc::from(s.as_ref());
            if inner.map.contains_key(&s) {
                return Err(DuplicateToken {
                    token: s.to_string(),
                    index: i,
                });
            }
            inner.map.insert(Arc::clone(&s), TokenId(i as u32));
            inner.strings.push(s);
        }
        Ok(Self {
            inner: RwLock::new(inner),
            rank_cache: RwLock::default(),
        })
    }

    /// Interns `token`, returning its dense id (allocating a new one for a
    /// first sighting).
    pub fn intern(&self, token: &str) -> TokenId {
        if let Some(&id) = self.inner.read().expect("interner poisoned").map.get(token) {
            return id;
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        // Re-check: another writer may have interned it between the locks.
        if let Some(&id) = inner.map.get(token) {
            return id;
        }
        let id = TokenId(inner.strings.len() as u32);
        let s: Arc<str> = Arc::from(token);
        inner.strings.push(Arc::clone(&s));
        inner.map.insert(s, id);
        id
    }

    /// The id of `token` if it has been interned.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.inner
            .read()
            .expect("interner poisoned")
            .map
            .get(token)
            .copied()
    }

    /// The string of an interned id (zero-copy shared handle).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by this interner.
    pub fn resolve(&self, id: TokenId) -> Arc<str> {
        Arc::clone(&self.inner.read().expect("interner poisoned").strings[id.index()])
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all interned strings, indexed by id.
    pub fn strings(&self) -> Vec<Arc<str>> {
        self.inner
            .read()
            .expect("interner poisoned")
            .strings
            .clone()
    }

    /// Lexicographic rank table: `rank[id] = r` iff the id's string is the
    /// `r`-th smallest interned string. One vocabulary-sized sort that lets
    /// every downstream "order by token text" be a `u32` comparison.
    /// Memoized per vocabulary size: repeated calls with no intervening
    /// interning return the cached table.
    pub fn rank(&self) -> Arc<Vec<u32>> {
        {
            let cache = self.rank_cache.read().expect("interner poisoned");
            if cache.0 == self.len() {
                return Arc::clone(&cache.1);
            }
        }
        // Compute outside any lock on `inner`-adjacent state; the snapshot
        // fixes the vocabulary this table is valid for.
        let strings = self.strings();
        let mut order: Vec<u32> = (0..strings.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| strings[a as usize].cmp(&strings[b as usize]));
        let mut rank = vec![0u32; strings.len()];
        for (r, &id) in order.iter().enumerate() {
            rank[id as usize] = r as u32;
        }
        let rank = Arc::new(rank);
        let mut cache = self.rank_cache.write().expect("interner poisoned");
        // Keep whichever table covers more of the vocabulary.
        if strings.len() >= cache.0 {
            *cache = (strings.len(), Arc::clone(&rank));
        }
        rank
    }

    /// Compares two ids by their resolved strings (for deterministic,
    /// text-ordered output without materializing a rank table).
    pub fn cmp_str(&self, a: TokenId, b: TokenId) -> std::cmp::Ordering {
        let inner = self.inner.read().expect("interner poisoned");
        inner.strings[a.index()].cmp(&inner.strings[b.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let it = TokenInterner::new();
        let a = it.intern("carl");
        let b = it.intern("white");
        assert_eq!(a, TokenId(0));
        assert_eq!(b, TokenId(1));
        assert_eq!(it.intern("carl"), a);
        assert_eq!(it.len(), 2);
        assert_eq!(&*it.resolve(a), "carl");
        assert_eq!(it.get("white"), Some(b));
        assert_eq!(it.get("absent"), None);
    }

    #[test]
    fn rank_orders_by_string() {
        let it = TokenInterner::new();
        let z = it.intern("zeta");
        let a = it.intern("alpha");
        let m = it.intern("mid");
        let rank = it.rank();
        assert_eq!(rank[a.index()], 0);
        assert_eq!(rank[m.index()], 1);
        assert_eq!(rank[z.index()], 2);
        assert_eq!(it.cmp_str(a, z), std::cmp::Ordering::Less);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let it = TokenInterner::shared();
        let tokens: Vec<String> = (0..200).map(|i| format!("tok{}", i % 50)).collect();
        std::thread::scope(|scope| {
            for chunk in tokens.chunks(50) {
                let it = Arc::clone(&it);
                scope.spawn(move || {
                    for t in chunk {
                        it.intern(t);
                    }
                });
            }
        });
        assert_eq!(it.len(), 50);
        // Every token maps to the id whose resolution round-trips.
        for t in &tokens {
            let id = it.get(t).expect("interned");
            assert_eq!(&*it.resolve(id), t.as_str());
        }
    }

    #[test]
    fn from_strings_preserves_ids() {
        let original = TokenInterner::new();
        for t in ["zeta", "alpha", "mid"] {
            original.intern(t);
        }
        let strings = original.strings();
        let restored = TokenInterner::from_strings(strings.iter().map(|s| &**s)).unwrap();
        assert_eq!(restored.len(), original.len());
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(restored.get(s), Some(TokenId(i as u32)));
            assert_eq!(&*restored.resolve(TokenId(i as u32)), &**s);
        }
        assert_eq!(restored.rank(), original.rank());
        // Restored interners keep interning with the next dense id.
        assert_eq!(restored.intern("new-token"), TokenId(3));
    }

    #[test]
    fn from_strings_rejects_duplicates() {
        let err = TokenInterner::from_strings(["a", "b", "a"]).unwrap_err();
        assert_eq!(err.token, "a");
        assert_eq!(err.index, 2);
    }

    #[test]
    fn empty_interner() {
        let it = TokenInterner::new();
        assert!(it.is_empty());
        assert!(it.rank().is_empty());
    }
}
