//! Character q-grams: an auxiliary similarity used by the synthetic data
//! calibration and available as an alternative cheap match function.
//!
//! Grams are **borrowed slices of the input** — a q-gram of `s` is
//! `&s[i..j]` over char boundaries, so counting the grams of a string
//! performs zero per-gram allocations.

use std::collections::HashMap;

/// Returns the multiset of character `q`-grams of `s` as a count map keyed
/// by borrowed slices of `s`.
///
/// Strings shorter than `q` yield a single gram equal to the whole string
/// (so very short values still compare meaningfully).
///
/// # Examples
///
/// ```
/// use sper_text::qgrams;
/// let g = qgrams("abab", 2);
/// assert_eq!(g.get("ab"), Some(&2));
/// assert_eq!(g.get("ba"), Some(&1));
/// ```
pub fn qgrams(s: &str, q: usize) -> HashMap<&str, u32> {
    assert!(q > 0, "q must be positive");
    let mut map = HashMap::new();
    if s.is_empty() {
        return map;
    }
    // Char-boundary byte offsets, with the end sentinel: gram i spans
    // bytes `bounds[i]..bounds[i + q]`.
    let mut bounds: Vec<usize> = s.char_indices().map(|(i, _)| i).collect();
    bounds.push(s.len());
    let n = bounds.len() - 1; // number of chars
    if n < q {
        *map.entry(s).or_insert(0) += 1;
        return map;
    }
    for i in 0..=n - q {
        let gram = &s[bounds[i]..bounds[i + q]];
        *map.entry(gram).or_insert(0) += 1;
    }
    map
}

/// Multiset-Jaccard similarity over q-gram profiles:
/// `Σ min(countA, countB) / Σ max(countA, countB)`.
///
/// # Examples
///
/// ```
/// use sper_text::qgram_similarity;
/// assert_eq!(qgram_similarity("night", "night", 2), 1.0);
/// assert!(qgram_similarity("night", "nacht", 2) < 0.5);
/// ```
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let mut inter = 0u64;
    let mut union = 0u64;
    for (gram, &ca) in &ga {
        let cb = gb.get(gram).copied().unwrap_or(0);
        inter += u64::from(ca.min(cb));
        union += u64::from(ca.max(cb));
    }
    for (gram, &cb) in &gb {
        if !ga.contains_key(gram) {
            union += u64::from(cb);
        }
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_counts() {
        let g = qgrams("hello", 2);
        assert_eq!(g.len(), 4);
        assert!(g.values().all(|&c| c == 1));
    }

    #[test]
    fn grams_borrow_from_input() {
        let s = String::from("hello");
        let g = qgrams(&s, 2);
        for gram in g.keys() {
            // Each gram points into the original string's buffer.
            let offset = gram.as_ptr() as usize - s.as_ptr() as usize;
            assert!(offset + gram.len() <= s.len());
        }
    }

    #[test]
    fn multibyte_grams_respect_char_boundaries() {
        let g = qgrams("héllo", 2);
        assert_eq!(g.get("hé"), Some(&1));
        assert_eq!(g.get("él"), Some(&1));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn short_string_single_gram() {
        let g = qgrams("a", 3);
        assert_eq!(g.get("a"), Some(&1));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn empty_string() {
        assert!(qgrams("", 2).is_empty());
        assert_eq!(qgram_similarity("", "", 2), 1.0);
        assert_eq!(qgram_similarity("ab", "", 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }

    #[test]
    fn similarity_symmetry() {
        for (a, b) in [("night", "nacht"), ("carl", "karl"), ("", "x")] {
            assert_eq!(qgram_similarity(a, b, 2), qgram_similarity(b, a, 2));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn similarity_in_unit_range(a in "[a-d]{0,10}", b in "[a-d]{0,10}", q in 1usize..4) {
            let s = qgram_similarity(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(qgram_similarity(&a, &a, q), 1.0);
        }

        #[test]
        fn gram_total_count(a in "[a-d]{0,12}", q in 1usize..4) {
            let total: u32 = qgrams(&a, q).values().sum();
            let n = a.chars().count();
            let expected = if n == 0 { 0 } else if n < q { 1 } else { (n - q + 1) as u32 };
            prop_assert_eq!(total, expected);
        }
    }
}
