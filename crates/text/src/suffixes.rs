//! Suffix extraction for Suffix Arrays Blocking (§4.2, \[19\], \[21\]).
//!
//! SAB converts every blocking key into all of its suffixes with at least
//! `lmin` characters; the hierarchy of suffixes (each suffix is the parent of
//! the one-character-longer suffixes that end with it) forms the *suffix
//! forest* that SA-PSAB processes leaves-first.

/// Iterator over the suffixes of a token with at least `min_len` characters,
/// from the **longest** (the token itself) to the shortest allowed.
///
/// Operates on character boundaries, so multi-byte UTF-8 input is safe.
#[derive(Debug, Clone)]
pub struct SuffixIter<'a> {
    token: &'a str,
    /// Byte offsets of the remaining suffix start positions, shortest first.
    starts: Vec<usize>,
}

impl<'a> SuffixIter<'a> {
    /// Creates the iterator. `min_len` is measured in characters and clamped
    /// to at least 1.
    pub fn new(token: &'a str, min_len: usize) -> Self {
        let min_len = min_len.max(1);
        let n_chars = token.chars().count();
        let mut starts = Vec::new();
        if n_chars >= min_len {
            // Collect byte offsets for suffixes of length min_len..=n_chars.
            let mut offsets: Vec<usize> = token.char_indices().map(|(i, _)| i).collect();
            offsets.push(token.len());
            // Suffix of char-length L starts at char index n_chars - L.
            for len in min_len..=n_chars {
                starts.push(offsets[n_chars - len]);
            }
            // `starts` is now ordered shortest-suffix-first; we pop from the
            // back to yield longest first.
        }
        Self { token, starts }
    }
}

impl<'a> Iterator for SuffixIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        self.starts.pop().map(|s| &self.token[s..])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.starts.len(), Some(self.starts.len()))
    }
}

impl ExactSizeIterator for SuffixIter<'_> {}

/// Collects the suffixes of `token` with at least `min_len` characters,
/// longest first.
///
/// # Examples
///
/// ```
/// use sper_text::suffixes_of;
/// assert_eq!(suffixes_of("coin", 2), vec!["coin", "oin", "in"]);
/// assert_eq!(suffixes_of("in", 3), Vec::<&str>::new());
/// ```
pub fn suffixes_of(token: &str, min_len: usize) -> Vec<&str> {
    SuffixIter::new(token, min_len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fig5() {
        // Fig. 5 suffix tree: gain/pain/join/coin → ain/oin → in (lmin = 2).
        assert_eq!(suffixes_of("gain", 2), vec!["gain", "ain", "in"]);
        assert_eq!(suffixes_of("join", 2), vec!["join", "oin", "in"]);
        // Shared suffixes across keys land in the same blocks.
        assert!(suffixes_of("pain", 2).contains(&"ain"));
        assert!(suffixes_of("coin", 2).contains(&"oin"));
    }

    #[test]
    fn token_equal_to_min_len() {
        assert_eq!(suffixes_of("ab", 2), vec!["ab"]);
    }

    #[test]
    fn token_shorter_than_min_len() {
        assert!(suffixes_of("a", 2).is_empty());
    }

    #[test]
    fn min_len_clamped_to_one() {
        assert_eq!(suffixes_of("ab", 0), vec!["ab", "b"]);
    }

    #[test]
    fn utf8_boundaries() {
        assert_eq!(suffixes_of("café", 2), vec!["café", "afé", "fé"]);
    }

    #[test]
    fn exact_size() {
        let it = SuffixIter::new("abcdef", 3);
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every suffix really is a suffix, lengths strictly decrease, and
        /// the count is n − min_len + 1 (when n ≥ min_len).
        #[test]
        fn suffix_invariants(s in "[a-z]{0,12}", min_len in 1usize..5) {
            let sufs = suffixes_of(&s, min_len);
            let n = s.chars().count();
            if n < min_len {
                prop_assert!(sufs.is_empty());
            } else {
                prop_assert_eq!(sufs.len(), n - min_len + 1);
                prop_assert_eq!(sufs[0], s.as_str());
                for w in sufs.windows(2) {
                    prop_assert!(s.ends_with(w[0]));
                    prop_assert!(s.ends_with(w[1]));
                    prop_assert_eq!(w[0].chars().count(), w[1].chars().count() + 1);
                }
            }
        }
    }
}
