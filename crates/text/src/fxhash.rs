//! A minimal Fx-style hasher (the multiply-rotate scheme popularized by
//! Firefox and rustc) for the interner's hot map.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~1 ns/byte; the
//! interner hashes every token of every profile exactly once per intern
//! call, on trusted in-process data, so a fast non-cryptographic hash is
//! the right trade. Not suitable for maps keyed by untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Length in the tail word would collide "ab\0" with "ab"; mix
            // the byte count in explicitly instead.
            self.add_to_hash(bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`], for use as a `HashMap` hasher
/// parameter.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(s: &str) -> u64 {
        let mut h = FxHasher::default();
        h.write(s.as_bytes());
        h.finish()
    }

    #[test]
    fn distinct_strings_distinct_hashes() {
        let inputs = ["", "a", "ab", "ab\0", "ba", "carl", "white", "whitex"];
        let hashes: std::collections::HashSet<u64> = inputs.iter().map(|s| hash_of(s)).collect();
        assert_eq!(hashes.len(), inputs.len());
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_of("tailor"), hash_of("tailor"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for (i, s) in ["x", "y", "z"].iter().enumerate() {
            m.insert(s.to_string(), i as u32);
        }
        assert_eq!(m.get("y"), Some(&1));
    }
}
