//! Attribute-value tokenization — the source of schema-agnostic blocking keys.
//!
//! Token Blocking (§3, \[18\]) creates one block per distinct attribute-value
//! token. The tokenizer splits attribute values on non-alphanumeric
//! boundaries, normalizes each token, and optionally drops tokens that are
//! too short to be discriminative.
//!
//! For RDF-style values (URIs), splitting on non-alphanumeric boundaries
//! yields the URI path fragments; the prefix fragments (`http`, `www`, domain parts) become
//! extremely frequent tokens that Block Purging later removes — exactly the
//! noise mechanism the paper describes for freebase (§7.2).

use crate::interner::{TokenId, TokenInterner};
use crate::normalize::normalize_token_into;

/// Configuration for [`Tokenizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizerConfig {
    /// Minimum token length (in bytes after normalization); shorter tokens
    /// are discarded. The paper's workflow keeps all tokens, so the default
    /// is 1.
    pub min_token_len: usize,
    /// When true, purely numeric tokens are kept (default). Disabling them is
    /// occasionally useful for bibliographic data where page numbers are
    /// noise.
    pub keep_numeric: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            min_token_len: 1,
            keep_numeric: true,
        }
    }
}

/// Splits attribute values into normalized tokens.
///
/// # Examples
///
/// ```
/// use sper_text::Tokenizer;
/// let t = Tokenizer::default();
/// assert_eq!(
///     t.tokenize("Emma White, WI Tailor"),
///     vec!["emma", "white", "wi", "tailor"]
/// );
/// // URI values decompose into their fragments:
/// assert_eq!(
///     t.tokenize("http://kb.org/resource/Carl_White"),
///     vec!["http", "kb", "org", "resource", "carl", "white"]
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Self { config }
    }

    /// Returns the configuration in use.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenizes `value`, returning owned normalized tokens in order of
    /// appearance (duplicates preserved — block construction dedups later).
    pub fn tokenize(&self, value: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(value, &mut out);
        out
    }

    /// Calls `f` with every normalized token of `value`, in order of
    /// appearance, without allocating per token — the primitive the owned
    /// and interned tokenization paths are built on. The `&str` argument
    /// is a reused buffer; callers must copy or intern what they keep.
    pub fn for_each_token(&self, value: &str, mut f: impl FnMut(&str)) {
        let mut buf = String::new();
        for raw in value.split(|c: char| !c.is_ascii_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            if !normalize_token_into(raw, &mut buf) {
                continue;
            }
            if buf.len() < self.config.min_token_len {
                continue;
            }
            if !self.config.keep_numeric && buf.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            f(&buf);
        }
    }

    /// Tokenizes `value` appending into `out` (which is *not* cleared), so a
    /// profile's tokens across all attributes can accumulate in one buffer.
    pub fn tokenize_into(&self, value: &str, out: &mut Vec<String>) {
        self.for_each_token(value, |tok| out.push(tok.to_string()));
    }

    /// Tokenizes `value` straight into interned ids, appending to `out`
    /// (which is *not* cleared). The allocation-free hot path of the
    /// columnar core: each raw token is normalized into one reusable buffer
    /// and interned — no per-token `String` is ever created.
    pub fn tokenize_ids_into(&self, value: &str, interner: &TokenInterner, out: &mut Vec<TokenId>) {
        self.for_each_token(value, |tok| out.push(interner.intern(tok)));
    }
}

/// Convenience wrapper: tokenize with the default configuration.
pub fn tokenize_value(value: &str) -> Vec<String> {
    Tokenizer::default().tokenize(value)
}

/// Convenience wrapper: tokenize with the default configuration into `out`.
pub fn tokenize_value_into(value: &str, out: &mut Vec<String>) {
    Tokenizer::default().tokenize_into(value, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(
            tokenize_value("Hellen White, ML teacher"),
            vec!["hellen", "white", "ml", "teacher"]
        );
    }

    #[test]
    fn underscore_splits_rdf_local_names() {
        // Fig. 3: Carl_White yields the tokens carl and white, which is why
        // the "white" block contains all six profiles.
        assert_eq!(tokenize_value(":Carl_White"), vec!["carl", "white"]);
    }

    #[test]
    fn uri_decomposes_into_fragments() {
        assert_eq!(
            tokenize_value("http://dbpedia.org/resource/Rome"),
            vec!["http", "dbpedia", "org", "resource", "rome"]
        );
    }

    #[test]
    fn empty_value_gives_no_tokens() {
        assert!(tokenize_value("").is_empty());
        assert!(tokenize_value("  ,,  ").is_empty());
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer::new(TokenizerConfig {
            min_token_len: 3,
            keep_numeric: true,
        });
        assert_eq!(t.tokenize("NY is a big city"), vec!["big", "city"]);
    }

    #[test]
    fn numeric_filter() {
        let t = Tokenizer::new(TokenizerConfig {
            min_token_len: 1,
            keep_numeric: false,
        });
        assert_eq!(t.tokenize("pages 42 to 58"), vec!["pages", "to"]);
    }

    #[test]
    fn accumulates_across_calls() {
        let t = Tokenizer::default();
        let mut out = Vec::new();
        t.tokenize_into("Carl", &mut out);
        t.tokenize_into("White", &mut out);
        assert_eq!(out, vec!["carl", "white"]);
    }

    #[test]
    fn duplicates_preserved() {
        assert_eq!(
            tokenize_value("white on white"),
            vec!["white", "on", "white"]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every produced token is non-empty, normalized (lowercase ASCII
        /// alphanumerics plus underscore), and at least `min_token_len` long.
        #[test]
        fn tokens_are_normalized(s in "\\PC{0,64}") {
            for tok in tokenize_value(&s) {
                prop_assert!(!tok.is_empty());
                prop_assert!(tok
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || !c.is_ascii()));
                // Edges are alphanumeric after normalization.
                prop_assert!(tok.chars().next().unwrap().is_ascii_alphanumeric()
                    || !tok.chars().next().unwrap().is_ascii());
            }
        }

        /// Tokenizing the join of the tokens reproduces the tokens
        /// (idempotence of the pipeline on its own output), for ASCII input.
        #[test]
        fn idempotent_on_own_output(s in "[a-zA-Z0-9 ,./:-]{0,64}") {
            let once = tokenize_value(&s);
            let joined = once.join(" ");
            let twice = tokenize_value(&joined);
            prop_assert_eq!(once, twice);
        }
    }
}
