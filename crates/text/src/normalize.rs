//! Token normalization.
//!
//! Schema-agnostic blocking treats every attribute-value token as a blocking
//! key (§3, Token Blocking). To make key equality meaningful across sources
//! with different casing/punctuation conventions, tokens are lowercased and
//! stripped of non-alphanumeric edges before being used as keys.

/// Normalizes a raw token into a canonical blocking-key form.
///
/// Lowercases ASCII characters and trims leading/trailing characters that are
/// not ASCII alphanumeric. Interior punctuation is preserved (URIs keep their
/// internal structure, which matters for the RDF datasets where tokens are
/// URI fragments).
///
/// Returns `None` when nothing alphanumeric remains (pure punctuation).
///
/// # Examples
///
/// ```
/// use sper_text::normalize_token;
/// assert_eq!(normalize_token("Tailor,"), Some("tailor".to_string()));
/// assert_eq!(normalize_token("--"), None);
/// assert_eq!(normalize_token("NY"), Some("ny".to_string()));
/// ```
pub fn normalize_token(raw: &str) -> Option<String> {
    let trimmed = raw.trim_matches(|c: char| !c.is_ascii_alphanumeric());
    if trimmed.is_empty() {
        return None;
    }
    Some(trimmed.to_ascii_lowercase())
}

/// In-place variant of [`normalize_token`] that reuses the output buffer,
/// avoiding one allocation per token on the hot tokenization path.
///
/// Returns `true` when a non-empty normalized token was written into `out`.
pub fn normalize_token_into(raw: &str, out: &mut String) -> bool {
    out.clear();
    let trimmed = raw.trim_matches(|c: char| !c.is_ascii_alphanumeric());
    if trimmed.is_empty() {
        return false;
    }
    out.reserve(trimmed.len());
    for b in trimmed.chars() {
        out.push(b.to_ascii_lowercase());
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize_token("Carl"), Some("carl".into()));
        assert_eq!(normalize_token("WHITE"), Some("white".into()));
    }

    #[test]
    fn trims_punctuation_edges() {
        assert_eq!(normalize_token("(tailor)"), Some("tailor".into()));
        assert_eq!(normalize_token("'42'"), Some("42".into()));
    }

    #[test]
    fn keeps_interior_punctuation() {
        // URI-style tokens must keep their internal structure.
        assert_eq!(normalize_token("Karl_White"), Some("karl_white".into()));
    }

    #[test]
    fn rejects_pure_punctuation() {
        assert_eq!(normalize_token("---"), None);
        assert_eq!(normalize_token(""), None);
        assert_eq!(normalize_token("!!"), None);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut buf = String::new();
        for raw in ["Carl", "(tailor)", "--", "", "Karl_White", "A1-b2"] {
            let expected = normalize_token(raw);
            let ok = normalize_token_into(raw, &mut buf);
            match expected {
                Some(s) => {
                    assert!(ok);
                    assert_eq!(buf, s);
                }
                None => assert!(!ok),
            }
        }
    }

    #[test]
    fn idempotent() {
        for raw in ["Carl", "(tailor)", "Karl_White", "NY."] {
            if let Some(once) = normalize_token(raw) {
                assert_eq!(normalize_token(&once), Some(once.clone()));
            }
        }
    }
}
